// HTTP facade tests: request validation, error mapping, the status
// snapshot, and the export stream's byte-identity with the on-disk store.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alertmanet/internal/campaign"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerRejectsBadRequests(t *testing.T) {
	q := &Queue{}
	ts := httptest.NewServer((&Server{Queue: q, Name: "t"}).Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"claim-bad-json", PathClaim, "{nope", http.StatusBadRequest},
		{"claim-no-worker", PathClaim, `{"max":4}`, http.StatusBadRequest},
		{"submit-bad-json", PathSubmit, "][", http.StatusBadRequest},
		{"submit-no-record", PathSubmit, `{"worker":"w"}`, http.StatusUnprocessableEntity},
		{"fail-no-key", PathFail, `{"worker":"w","error":"x"}`, http.StatusUnprocessableEntity},
		{"claim-wrong-method", PathClaim, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.name == "claim-wrong-method" {
				resp, err = http.Get(ts.URL + tc.path)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				resp = postJSON(t, ts.URL+tc.path, tc.body)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status: want %d, got %d", tc.want, resp.StatusCode)
			}
		})
	}
}

func TestServerStatusAndExport(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	q := &Queue{}
	ts := httptest.NewServer((&Server{Queue: q, Store: store, Name: "status-test"}).Handler())
	defer ts.Close()

	// Resolve one cell through the full HTTP path so status has counters
	// and the store has a line.
	c := testCell(30)
	outcomes, done := startBatch(t, q, context.Background(), []campaign.Cell{c})
	var claim ClaimResponse
	resp := postJSON(t, ts.URL+PathClaim, `{"worker":"w1","max":1}`)
	if err := json.NewDecoder(resp.Body).Decode(&claim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(claim.Cells) != 1 {
		t.Fatalf("claim: %+v", claim)
	}
	rec := recFor(c)
	body, _ := json.Marshal(SubmitRequest{Worker: "w1", Attempts: 1, Record: rec})
	resp = postJSON(t, ts.URL+PathSubmit, string(body))
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Status != StatusAccepted {
		t.Fatalf("submit: %s", sub.Status)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-outcomes
	if err := store.Append(rec); err != nil {
		t.Fatal(err)
	}
	q.Finish()

	var status StatusResponse
	resp, err = http.Get(ts.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Name != "status-test" || status.Stored != 1 || !status.Done ||
		status.Pending != 0 || status.Leased != 0 || status.Stats.Completed != 1 {
		t.Fatalf("status: %+v", status)
	}

	// Export must be byte-identical to the file the store wrote.
	resp, err = http.Get(ts.URL + PathExport)
	if err != nil {
		t.Fatal(err)
	}
	export, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(export, onDisk) {
		t.Fatalf("export differs from results.jsonl:\nexport %q\ndisk   %q", export, onDisk)
	}
}

func TestServerExportWithoutStore(t *testing.T) {
	ts := httptest.NewServer((&Server{Queue: &Queue{}}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + PathExport)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless export: want 404, got %d", resp.StatusCode)
	}
}

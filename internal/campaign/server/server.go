// The HTTP facade over the distributed campaign: claim/submit/fail move
// cells between the Queue and remote workers, status and export read the
// campaign's durable state. The server holds no protocol state of its own —
// everything lives in the Queue and the store — so killing and restarting
// the server process is just reopening the store and re-driving the
// campaign: the engine resolves the finished prefix from disk and only the
// missing suffix reaches the queue again.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"alertmanet/internal/campaign"
)

// Server exposes a campaign Queue and its durable store over HTTP.
type Server struct {
	// Queue is the work pool claims and submits flow through.
	Queue *Queue
	// Name labels the campaign in status responses.
	Name string
	// Store, when set, backs the status record count and the export
	// stream. It is the same store the campaign engine appends to.
	Store *campaign.Store
}

// Handler returns the protocol's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathClaim, s.handleClaim)
	mux.HandleFunc("POST "+PathSubmit, s.handleSubmit)
	mux.HandleFunc("POST "+PathFail, s.handleFail)
	mux.HandleFunc("GET "+PathStatus, s.handleStatus)
	mux.HandleFunc("GET "+PathExport, s.handleExport)
	return mux
}

// decode parses a JSON request body, rejecting trailing garbage.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The connection is gone; nothing useful to do. The queue state
		// already reflects the request (a lost claim response re-leases
		// after expiry; a lost submit response re-submits idempotently).
		_ = err
	}
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "claim needs a worker name", http.StatusBadRequest)
		return
	}
	cells, done := s.Queue.Claim(req.Worker, req.Max)
	resp := ClaimResponse{Done: done}
	for _, c := range cells {
		resp.Cells = append(resp.Cells, WireCell{Key: c.Key(), Cell: c})
	}
	reply(w, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	status := s.Queue.Submit(req.Worker, req.Record, req.Attempts, req.Seconds)
	if status == StatusInvalid {
		http.Error(w, "invalid record", http.StatusUnprocessableEntity)
		return
	}
	reply(w, SubmitResponse{Status: status})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decode(w, r, &req) {
		return
	}
	status := s.Queue.Fail(req.Worker, req.Key, req.Error, req.Attempts)
	if status == StatusInvalid {
		http.Error(w, "invalid failure report", http.StatusUnprocessableEntity)
		return
	}
	reply(w, SubmitResponse{Status: status})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	stats, pending, leased, finished := s.Queue.Snapshot()
	resp := StatusResponse{
		Name:    s.Name,
		Pending: pending,
		Leased:  leased,
		Done:    finished,
		Stats:   stats,
	}
	if s.Store != nil {
		resp.Stored = s.Store.Len()
	}
	reply(w, resp)
}

// handleExport streams the store's records as JSONL — the same line format,
// in the same deterministic order, as the results.jsonl on the server's
// disk, so `campaign export -server` of a finished distributed run is
// byte-identical to a single-process run's file.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if s.Store == nil {
		http.Error(w, "no store attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	enc := json.NewEncoder(w)
	for _, rec := range s.Store.Records() {
		if err := enc.Encode(rec); err != nil {
			return // client went away mid-stream
		}
	}
}

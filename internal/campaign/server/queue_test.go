// Queue unit tests: the lease/submit state machine in isolation — idempotent
// duplicates, unknown and invalid submits, failure propagation, lease expiry
// under a fake clock, and the cancellation teardown that must never let a
// report outlive ExecuteCells.

package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"alertmanet/internal/campaign"
	"alertmanet/internal/campaign/campaigntesting"
	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
)

// testCell builds a tiny mobility-only cell (cheap to execute for real).
func testCell(seed int64) campaign.Cell {
	return campaign.RemainingCell(experiment.RemainingSpec{
		Seed: seed, N: 5, H: 2, Speed: 1, Mobility: experiment.RandomWaypoint,
		Field: geo.Rect{Max: geo.Point{X: 100, Y: 100}},
		Times: []float64{0, 1}, Dests: 1,
	})
}

// recFor fabricates a record matching a cell's key and kind — enough to
// satisfy the queue's integrity gate without running a simulation.
func recFor(c campaign.Cell) *campaign.Record {
	return &campaign.Record{
		Key: c.Key(), Kind: campaign.KindRemaining,
		Remaining: &experiment.RemainingResult{Sums: []float64{1}, Count: 1},
	}
}

// startBatch launches ExecuteCells in the background and waits until every
// cell is claimable, returning the outcome stream and completion channel.
func startBatch(t *testing.T, q *Queue, ctx context.Context, cells []campaign.Cell) (chan campaign.Outcome, chan error) {
	t.Helper()
	outcomes := make(chan campaign.Outcome, len(cells))
	done := make(chan error, 1)
	go func() {
		done <- q.ExecuteCells(ctx, cells, func(o campaign.Outcome) { outcomes <- o })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, pending, leased, _ := q.Snapshot()
		if pending+leased == len(cells) {
			return outcomes, done
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never became claimable: pending=%d leased=%d", pending, leased)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueSubmitLifecycle(t *testing.T) {
	q := &Queue{}
	c := testCell(1)
	rec := recFor(c)

	// Before any batch: the queue has never heard of this cell.
	if got := q.Submit("w1", rec, 1, 0); got != StatusUnknown {
		t.Fatalf("pre-batch submit: want unknown, got %s", got)
	}

	outcomes, done := startBatch(t, q, context.Background(), []campaign.Cell{c})
	cells, qdone := q.Claim("w1", 10)
	if qdone || len(cells) != 1 || cells[0].Key() != c.Key() {
		t.Fatalf("claim: got %d cells done=%v", len(cells), qdone)
	}

	if got := q.Submit("w1", rec, 2, 0.5); got != StatusAccepted {
		t.Fatalf("first submit: want accepted, got %s", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("ExecuteCells: %v", err)
	}
	o := <-outcomes
	if o.Key != c.Key() || o.Err != nil || o.Rec != rec || o.Attempts != 2 {
		t.Fatalf("outcome: %+v", o)
	}

	// A retransmit after the batch completed is absorbed, not re-reported.
	if got := q.Submit("w2", rec, 1, 0); got != StatusDuplicate {
		t.Fatalf("retransmit: want duplicate, got %s", got)
	}
	select {
	case o := <-outcomes:
		t.Fatalf("duplicate submit reached the engine: %+v", o)
	default:
	}
	stats, _, _, _ := q.Snapshot()
	if stats.Completed != 1 || stats.Duplicates != 1 || stats.Unknown != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestQueueSubmitInvalid(t *testing.T) {
	q := &Queue{}
	c := testCell(2)
	_, done := startBatch(t, q, context.Background(), []campaign.Cell{c})
	q.Claim("w1", 1)

	if got := q.Submit("w1", nil, 1, 0); got != StatusInvalid {
		t.Fatalf("nil record: want invalid, got %s", got)
	}
	if got := q.Submit("w1", &campaign.Record{}, 1, 0); got != StatusInvalid {
		t.Fatalf("empty key: want invalid, got %s", got)
	}
	// Right key, wrong payload shape: a remaining cell with a missing
	// remaining payload must not resolve the lease.
	if got := q.Submit("w1", &campaign.Record{Key: c.Key(), Kind: campaign.KindRemaining}, 1, 0); got != StatusInvalid {
		t.Fatalf("kindless payload: want invalid, got %s", got)
	}
	if got := q.Submit("w1", &campaign.Record{Key: c.Key(), Kind: campaign.KindRun}, 1, 0); got != StatusInvalid {
		t.Fatalf("kind mismatch: want invalid, got %s", got)
	}

	// The lease survived all of it; a correct submit still lands.
	if got := q.Submit("w1", recFor(c), 1, 0); got != StatusAccepted {
		t.Fatalf("correct submit after invalid attempts: want accepted, got %s", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestQueueFailPropagates(t *testing.T) {
	q := &Queue{}
	c := testCell(3)
	outcomes, done := startBatch(t, q, context.Background(), []campaign.Cell{c})
	q.Claim("w1", 1)

	if got := q.Fail("w1", c.Key(), "simulation exploded", 3); got != StatusAccepted {
		t.Fatalf("fail: want accepted, got %s", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("ExecuteCells returns nil for per-cell failures, got %v", err)
	}
	o := <-outcomes
	var rerr *RemoteError
	if !errors.As(o.Err, &rerr) || rerr.Worker != "w1" || rerr.Message != "simulation exploded" {
		t.Fatalf("outcome error: %v", o.Err)
	}
	if o.Attempts != 3 {
		t.Fatalf("attempts: %d", o.Attempts)
	}
	// Both a duplicate fail and a late submit for the failed cell absorb.
	if got := q.Fail("w1", c.Key(), "again", 1); got != StatusDuplicate {
		t.Fatalf("duplicate fail: want duplicate, got %s", got)
	}
	if got := q.Submit("w1", recFor(c), 1, 0); got != StatusDuplicate {
		t.Fatalf("late submit after fail: want duplicate, got %s", got)
	}
}

func TestQueueLeaseExpiry(t *testing.T) {
	clk := campaigntesting.NewClock(time.Unix(0, 0))
	q := &Queue{Lease: time.Minute, Now: clk.Now}
	var events []Event
	q.OnEvent = func(ev Event) { events = append(events, ev) }
	c := testCell(4)
	outcomes, done := startBatch(t, q, context.Background(), []campaign.Cell{c})

	cells, _ := q.Claim("w1", 1)
	if len(cells) != 1 {
		t.Fatalf("first claim: %d cells", len(cells))
	}
	// Within the lease nobody else gets the cell.
	if cells, _ := q.Claim("w2", 1); len(cells) != 0 {
		t.Fatal("cell re-leased before expiry")
	}
	clk.Advance(2 * time.Minute)
	cells, _ = q.Claim("w2", 1)
	if len(cells) != 1 || cells[0].Key() != c.Key() {
		t.Fatalf("post-expiry claim: %d cells", len(cells))
	}

	// The reclaiming worker resolves it; the presumed-dead original's late
	// submit is absorbed.
	if got := q.Submit("w2", recFor(c), 1, 0); got != StatusAccepted {
		t.Fatalf("w2 submit: %s", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := q.Submit("w1", recFor(c), 1, 0); got != StatusDuplicate {
		t.Fatalf("late submit from expired holder: want duplicate, got %s", got)
	}
	<-outcomes

	stats, _, _, _ := q.Snapshot()
	if stats.Expired != 1 || stats.Completed != 1 || stats.Duplicates != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{EventClaim, EventExpire, EventClaim, EventSubmit, EventDuplicate}
	if len(kinds) != len(want) {
		t.Fatalf("events: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: want %s, got %s (all: %v)", i, want[i], kinds[i], kinds)
		}
	}
}

func TestQueueCancelTeardown(t *testing.T) {
	q := &Queue{}
	ctx, cancel := context.WithCancel(context.Background())
	c1, c2 := testCell(5), testCell(6)
	outcomes, done := startBatch(t, q, ctx, []campaign.Cell{c1, c2})
	q.Claim("w1", 1) // c1 leased, c2 still pending

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ExecuteCells: %v", err)
	}
	// Every cell of the batch reported the cancellation — leased or not —
	// in deterministic enqueue order.
	o1, o2 := <-outcomes, <-outcomes
	if o1.Key != c1.Key() || o2.Key != c2.Key() {
		t.Fatalf("teardown order: %s then %s", o1.Key[:8], o2.Key[:8])
	}
	for _, o := range []campaign.Outcome{o1, o2} {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("orphan outcome: %+v", o)
		}
	}
	// The in-flight worker's eventual submit finds nothing to resolve.
	if got := q.Submit("w1", recFor(c1), 1, 0); got != StatusUnknown {
		t.Fatalf("post-teardown submit: want unknown, got %s", got)
	}
}

func TestQueueClaimDone(t *testing.T) {
	q := &Queue{}
	if _, done := q.Claim("w1", 1); done {
		t.Fatal("unfinished queue reported done")
	}
	q.Finish()
	cells, done := q.Claim("w1", 1)
	if len(cells) != 0 || !done {
		t.Fatalf("finished empty queue: cells=%d done=%v", len(cells), done)
	}
}

func TestQueueDrained(t *testing.T) {
	q := &Queue{}
	if q.Drained() {
		t.Fatal("unfinished queue cannot be drained")
	}
	c := testCell(10)
	outcomes, done := startBatch(t, q, context.Background(), []campaign.Cell{c})
	q.Claim("w1", 1) // w1 is now on the hook for a done-ack
	if got := q.Submit("w1", recFor(c), 1, 0); got != StatusAccepted {
		t.Fatalf("submit: %s", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-outcomes
	q.Finish()
	if q.Drained() {
		t.Fatal("w1 has not been told the campaign is done yet")
	}
	if _, qdone := q.Claim("w1", 1); !qdone {
		t.Fatal("post-finish claim should answer done")
	}
	if !q.Drained() {
		t.Fatal("every claimant has been told done; queue should drain")
	}
}

func TestQueueClaimBounds(t *testing.T) {
	q := &Queue{}
	cells := []campaign.Cell{testCell(7), testCell(8), testCell(9)}
	outcomes, done := startBatch(t, q, context.Background(), cells)

	got, _ := q.Claim("w1", 2)
	if len(got) != 2 {
		t.Fatalf("bounded claim: want 2, got %d", len(got))
	}
	rest, _ := q.Claim("w2", 10)
	if len(rest) != 1 {
		t.Fatalf("remainder claim: want 1, got %d", len(rest))
	}
	for _, c := range cells {
		q.Submit("w", recFor(c), 1, 0)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for range cells {
		<-outcomes
	}
}

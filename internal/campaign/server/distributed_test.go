// The distributed campaign's acceptance suite: a server plus remote workers
// over real HTTP must produce a results.jsonl byte-identical to the
// single-process engine — through duplicate submits, dropped requests and
// responses, delayed (reordered) acks, a worker killed mid-lease, and a
// kill/tear/resume across the store. The figure digests of the distributed
// run must also match the blessed golden corpus, so the bytes are not just
// self-consistent but correct.

package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alertmanet/internal/analysis"
	"alertmanet/internal/campaign"
	"alertmanet/internal/campaign/campaigntesting"
	"alertmanet/internal/experiment"
)

const goldenPath = "../../experiment/testdata/figures_golden.json"

// seriesDigest mirrors the experiment package's golden digest rendering.
func seriesDigest(series []analysis.Series) string {
	h := sha256.New()
	for _, s := range series {
		fmt.Fprintf(h, "%s|%v|%v|%v\n", s.Label, s.X, s.Y, s.Err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// driveFigures renders the distributed smoke subset — fig11, fig12, and the
// energy summary at the golden corpus's pinned parameters — through the
// given runner and returns their digests. This is the "driver" role: in a
// distributed campaign it runs next to the server while workers execute.
func driveFigures(r experiment.Runner) (map[string]string, error) {
	d := map[string]string{}
	s, err := experiment.Fig11(r, 3, 2)
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	d["fig11"] = seriesDigest([]analysis.Series{s})
	many, err := experiment.Fig12(r, []float64{0, 5, 10}, 2)
	if err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}
	d["fig12"] = seriesDigest(many)
	many, err = experiment.EnergySummary(r, 2)
	if err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	d["energy"] = seriesDigest(many)
	return d, nil
}

// The single-process reference run every distributed scenario is compared
// against, computed once per test binary.
var (
	refOnce    sync.Once
	refBytes   []byte
	refDigests map[string]string
	refErr     error
)

func reference(t *testing.T) ([]byte, map[string]string) {
	t.Helper()
	refOnce.Do(func() {
		dir, err := os.MkdirTemp("", "campaign-ref")
		if err != nil {
			refErr = err
			return
		}
		defer os.RemoveAll(dir)
		store, err := campaign.OpenStore(dir)
		if err != nil {
			refErr = err
			return
		}
		eng := &campaign.Engine{Name: "ref", Store: store, Jobs: 4}
		refDigests, refErr = driveFigures(eng)
		if cerr := store.Close(); refErr == nil {
			refErr = cerr
		}
		if refErr != nil {
			return
		}
		refBytes, refErr = os.ReadFile(filepath.Join(dir, "results.jsonl"))
	})
	if refErr != nil {
		t.Fatalf("reference run: %v", refErr)
	}
	return refBytes, refDigests
}

// harness is one live distributed campaign: store, queue, HTTP server, and
// the engine-driver goroutine rendering the figure subset through the queue.
type harness struct {
	t      *testing.T
	dir    string
	store  *campaign.Store
	queue  *Queue
	ts     *httptest.Server
	done   chan error // driver completion
	mu     sync.Mutex
	digest map[string]string
}

// startCampaign opens a store in dir, serves it, and launches the driver.
// The driver calls queue.Finish() when the figure drive ends, so workers
// polling the server exit on their own.
func startCampaign(t *testing.T, dir string, q *Queue, engCtx context.Context) *harness {
	t.Helper()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t: t, dir: dir, store: store, queue: q,
		done: make(chan error, 1),
	}
	h.ts = httptest.NewServer((&Server{Queue: q, Store: store, Name: "dist-test"}).Handler())
	go func() {
		eng := &campaign.Engine{Name: "dist-test", Store: store, Exec: q}
		if engCtx != nil {
			eng.WithContext(engCtx)
		}
		d, err := driveFigures(eng)
		h.mu.Lock()
		h.digest = d
		h.mu.Unlock()
		q.Finish()
		h.done <- err
	}()
	return h
}

func (h *harness) digests() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.digest
}

// finish waits for the driver, tears the transport down, closes the store,
// and returns the driver error with the final on-disk results.jsonl.
func (h *harness) finish() (error, []byte) {
	err := <-h.done
	h.ts.Close()
	if cerr := h.store.Close(); cerr != nil {
		h.t.Errorf("close store: %v", cerr)
	}
	data, rerr := os.ReadFile(filepath.Join(h.dir, "results.jsonl"))
	if rerr != nil {
		h.t.Fatalf("read results: %v", rerr)
	}
	return err, data
}

// runWorkers runs n workers concurrently against the harness until the
// campaign reports done, each configured by mk, and returns their errors.
func runWorkers(ctx context.Context, h *harness, n int, mk func(i int, w *Worker)) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Name:        fmt.Sprintf("w%d", i+1),
				BaseURL:     h.ts.URL,
				Jobs:        2,
				Poll:        2 * time.Millisecond,
				BackoffBase: time.Millisecond,
				BackoffMax:  20 * time.Millisecond,
			}
			if mk != nil {
				mk(i, w)
			}
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	return errs
}

func checkIdentical(t *testing.T, got, ref []byte) {
	t.Helper()
	if !bytes.Equal(got, ref) {
		t.Fatalf("distributed results.jsonl differs from single-process run:\ngot  %d bytes\nwant %d bytes", len(got), len(ref))
	}
}

// TestDistributedByteIdentical: two workers over real HTTP, one driver —
// the store bytes, the export stream, and the figure digests all match the
// single-process reference, and the digests match the blessed golden corpus.
func TestDistributedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the figure subset twice")
	}
	ref, refDig := reference(t)

	dir := t.TempDir()
	q := &Queue{Lease: time.Minute}
	h := startCampaign(t, dir, q, nil)
	werrs := runWorkers(context.Background(), h, 2, nil)

	// Export over HTTP before the server goes away.
	resp, err := http.Get(h.ts.URL + PathExport)
	if err != nil {
		t.Fatal(err)
	}
	export, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	derr, got := h.finish()
	if derr != nil {
		t.Fatalf("driver: %v", derr)
	}
	for i, werr := range werrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}
	checkIdentical(t, got, ref)
	if !bytes.Equal(export, ref) {
		t.Fatalf("HTTP export differs from single-process results.jsonl (%d vs %d bytes)", len(export), len(ref))
	}

	// The distributed run computed the same figures...
	for name, want := range refDig {
		if got := h.digests()[name]; got != want {
			t.Errorf("digest %s: distributed %s, single-process %s", name, got, want)
		}
	}
	// ...and both match the golden corpus blessed before campaigns existed.
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden corpus: %v", err)
	}
	var golden map[string]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	for name := range refDig {
		if golden[name] == "" {
			t.Fatalf("golden corpus has no %s digest", name)
		}
		if h.digests()[name] != golden[name] {
			t.Errorf("digest %s: distributed %s, golden %s", name, h.digests()[name], golden[name])
		}
	}

	stats, pending, leased, finished := q.Snapshot()
	if !finished || pending != 0 || leased != 0 {
		t.Fatalf("queue not drained: pending=%d leased=%d finished=%v", pending, leased, finished)
	}
	if stats.Completed == 0 || stats.Failed != 0 || stats.Unknown != 0 {
		t.Fatalf("unexpected queue stats: %+v", stats)
	}
}

// TestDistributedFaults replays the failure matrix: every scenario must
// converge to the byte-identical store.
func TestDistributedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the figure subset repeatedly")
	}
	ref, _ := reference(t)

	// Every submit is retransmitted: the queue must absorb the duplicates
	// idempotently.
	t.Run("duplicate-submits", func(t *testing.T) {
		dir := t.TempDir()
		q := &Queue{Lease: time.Minute}
		h := startCampaign(t, dir, q, nil)
		werrs := runWorkers(context.Background(), h, 2, func(i int, w *Worker) {
			w.Client = &http.Client{Transport: &campaigntesting.Transport{
				Script: func(n int, req *http.Request) campaigntesting.Result {
					return campaigntesting.Result{Duplicate: req.URL.Path == PathSubmit}
				},
			}}
		})
		derr, got := h.finish()
		if derr != nil {
			t.Fatalf("driver: %v", derr)
		}
		for i, werr := range werrs {
			if werr != nil {
				t.Fatalf("worker %d: %v", i+1, werr)
			}
		}
		checkIdentical(t, got, ref)
		stats, _, _, _ := q.Snapshot()
		if stats.Duplicates == 0 {
			t.Fatal("expected duplicate submits to be recorded")
		}
		if stats.Duplicates != stats.Completed {
			t.Fatalf("every submit was duplicated: want duplicates == completed, got %+v", stats)
		}
	})

	// Every other submit loses its response after the server processed it:
	// the worker retries, and the retry must come back "duplicate".
	t.Run("dropped-responses", func(t *testing.T) {
		dir := t.TempDir()
		q := &Queue{Lease: time.Minute}
		h := startCampaign(t, dir, q, nil)
		werrs := runWorkers(context.Background(), h, 1, func(i int, w *Worker) {
			w.Jobs = 1
			submits := 0
			w.Client = &http.Client{Transport: &campaigntesting.Transport{
				Script: func(n int, req *http.Request) campaigntesting.Result {
					if req.URL.Path != PathSubmit {
						return campaigntesting.Result{}
					}
					submits++
					return campaigntesting.Result{DropResponse: submits%2 == 1}
				},
			}}
		})
		derr, got := h.finish()
		if derr != nil {
			t.Fatalf("driver: %v", derr)
		}
		if werrs[0] != nil {
			t.Fatalf("worker: %v", werrs[0])
		}
		checkIdentical(t, got, ref)
		stats, _, _, _ := q.Snapshot()
		if stats.Duplicates == 0 {
			t.Fatal("a dropped submit response must surface as an absorbed duplicate retry")
		}
	})

	// Every fourth request vanishes before reaching the server: pure
	// retry/backoff territory, no duplicates required.
	t.Run("dropped-requests", func(t *testing.T) {
		dir := t.TempDir()
		q := &Queue{Lease: time.Minute}
		h := startCampaign(t, dir, q, nil)
		werrs := runWorkers(context.Background(), h, 2, func(i int, w *Worker) {
			w.Client = &http.Client{Transport: &campaigntesting.Transport{
				Script: func(n int, req *http.Request) campaigntesting.Result {
					return campaigntesting.Result{Drop: n%4 == 3}
				},
			}}
		})
		derr, got := h.finish()
		if derr != nil {
			t.Fatalf("driver: %v", derr)
		}
		for i, werr := range werrs {
			if werr != nil {
				t.Fatalf("worker %d: %v", i+1, werr)
			}
		}
		checkIdentical(t, got, ref)
		stats, _, _, _ := q.Snapshot()
		if stats.Unknown != 0 || stats.Failed != 0 {
			t.Fatalf("dropped requests should be invisible to the queue: %+v", stats)
		}
	})

	// Every other submit is delayed while a parallel executor's submit
	// overtakes it: responses arrive reordered, the store order must not.
	t.Run("delayed-submits-reorder", func(t *testing.T) {
		dir := t.TempDir()
		q := &Queue{Lease: time.Minute}
		h := startCampaign(t, dir, q, nil)
		werrs := runWorkers(context.Background(), h, 2, func(i int, w *Worker) {
			w.Jobs = 2
			w.Batch = 4
			submits := 0
			w.Client = &http.Client{Transport: &campaigntesting.Transport{
				Script: func(n int, req *http.Request) campaigntesting.Result {
					if req.URL.Path != PathSubmit {
						return campaigntesting.Result{}
					}
					submits++
					if submits%2 == 1 {
						return campaigntesting.Result{Before: func() { time.Sleep(3 * time.Millisecond) }}
					}
					return campaigntesting.Result{}
				},
			}}
		})
		derr, got := h.finish()
		if derr != nil {
			t.Fatalf("driver: %v", derr)
		}
		for i, werr := range werrs {
			if werr != nil {
				t.Fatalf("worker %d: %v", i+1, werr)
			}
		}
		checkIdentical(t, got, ref)
	})

	// A worker dies holding leases: the fake clock expires them, a second
	// worker reclaims and finishes the campaign.
	t.Run("worker-abandon-lease-expiry", func(t *testing.T) {
		clk := campaigntesting.NewClock(time.Unix(1700000000, 0))
		victimCtx, killVictim := context.WithCancel(context.Background())
		var killed atomic.Bool
		q := &Queue{Lease: time.Minute, Now: clk.Now}
		q.OnEvent = func(ev Event) {
			// The first real lease to the victim is its death warrant:
			// cancelled before the claim response reaches it, so its cells
			// are leased but never executed.
			if ev.Kind == EventClaim && ev.Worker == "victim" && killed.CompareAndSwap(false, true) {
				killVictim()
				clk.Advance(2 * time.Minute)
			}
		}
		dir := t.TempDir()
		h := startCampaign(t, dir, q, nil)

		victim := &Worker{
			Name: "victim", BaseURL: h.ts.URL,
			Batch: 3, Poll: time.Millisecond, BackoffBase: time.Millisecond,
		}
		if err := victim.Run(victimCtx); !errors.Is(err, context.Canceled) {
			t.Fatalf("victim should die by cancellation, got %v", err)
		}
		if !killed.Load() {
			t.Fatal("victim exited without ever claiming cells")
		}

		werrs := runWorkers(context.Background(), h, 1, func(i int, w *Worker) {
			w.Name = "survivor"
		})
		derr, got := h.finish()
		if derr != nil {
			t.Fatalf("driver: %v", derr)
		}
		if werrs[0] != nil {
			t.Fatalf("survivor: %v", werrs[0])
		}
		checkIdentical(t, got, ref)
		stats, _, _, _ := q.Snapshot()
		if stats.Expired == 0 {
			t.Fatal("the victim's leases should have expired and been reclaimed")
		}
	})
}

// TestDistributedResumeByteIdentical extends the engine's kill/resume
// contract across the process boundary: a distributed campaign killed after
// a handful of cells leaves an exact prefix on disk; tearing the prefix's
// tail mid-record and re-driving distributed appends exactly the missing
// suffix — final bytes identical to a never-interrupted single-process run.
func TestDistributedResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the figure subset twice")
	}
	ref, _ := reference(t)
	dir := t.TempDir()
	resultsPath := filepath.Join(dir, "results.jsonl")

	// Phase 1: kill the driver after 5 resolved cells.
	engCtx, cancelEngine := context.WithCancel(context.Background())
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := &Queue{Lease: time.Minute}
	ts := httptest.NewServer((&Server{Queue: q, Store: store}).Handler())
	eng := &campaign.Engine{Store: store, Exec: q}
	eng.OnCell = func(ev campaign.CellEvent) {
		if ev.Done >= 5 {
			cancelEngine()
		}
	}
	eng.WithContext(engCtx)

	driverDone := make(chan error, 1)
	go func() {
		_, err := driveFigures(eng)
		driverDone <- err
	}()
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w := &Worker{Name: "w1", BaseURL: ts.URL, Poll: 2 * time.Millisecond, BackoffBase: time.Millisecond}
		w.Run(wctx) // dies by cancellation; the campaign was killed mid-flight
	}()
	if derr := <-driverDone; derr == nil {
		t.Fatal("killed driver should report the cancellation")
	}
	stopWorker()
	<-workerDone
	ts.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	partial, err := os.ReadFile(resultsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= len(ref) {
		t.Fatalf("kill should leave a proper prefix: %d of %d bytes", len(partial), len(ref))
	}
	if !bytes.HasPrefix(ref, partial) {
		t.Fatal("killed distributed run is not a prefix of the single-process run")
	}

	// Tear the tail mid-record — the on-disk signature of a process killed
	// inside a write. Reopen must truncate to the last complete line.
	torn := partial[:len(partial)-7]
	if err := os.WriteFile(resultsPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh server process resumes the campaign.
	q2 := &Queue{Lease: time.Minute}
	h := startCampaign(t, dir, q2, nil)
	werrs := runWorkers(context.Background(), h, 2, nil)
	derr, got := h.finish()
	if derr != nil {
		t.Fatalf("resumed driver: %v", derr)
	}
	for i, werr := range werrs {
		if werr != nil {
			t.Fatalf("resumed worker %d: %v", i+1, werr)
		}
	}
	checkIdentical(t, got, ref)

	stats, _, _, _ := q2.Snapshot()
	if stats.Completed == 0 {
		t.Fatal("resume should re-execute the torn suffix through workers")
	}
}

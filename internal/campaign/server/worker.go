// The remote campaign worker: claim cells from a campaign server, execute
// them against a worker-local simulation arena, submit the records back, and
// repeat until the server reports the campaign done. Every HTTP call retries
// with deterministic exponential backoff — a dropped response is
// indistinguishable from a dropped request, and the protocol is built so
// retrying blindly is always safe: claims re-lease (or expire), submits are
// idempotent, and a worker that dies mid-cell simply lets its lease expire.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"alertmanet/internal/campaign"
	"alertmanet/internal/experiment"
)

// Worker defaults.
const (
	// DefaultPoll is the delay between claims when the queue is empty.
	DefaultPoll = 100 * time.Millisecond
	// DefaultBackoffBase and DefaultBackoffMax bound the deterministic
	// exponential backoff between HTTP attempts.
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
	// DefaultHTTPAttempts is how many times one request is tried before
	// the worker gives up on the server.
	DefaultHTTPAttempts = 8
)

// WorkerEvent reports one cell's execution to the worker's progress
// callback.
type WorkerEvent struct {
	// Key and Label identify the cell.
	Key   string
	Label string
	// Status is the server's verdict ("accepted", "duplicate") or "fail"
	// when the cell was reported unexecutable.
	Status SubmitStatus
	// Seconds is the execution wall time; Attempts the execution count.
	Seconds  float64
	Attempts int
	// Err is the execution error for failed cells.
	Err error
}

// Worker executes campaign cells claimed from a remote server. The zero
// value plus BaseURL is usable: one executor goroutine, default batch,
// retries, and backoff.
type Worker struct {
	// Name identifies the worker in server-side leases and events; "" is
	// replaced by "worker".
	Name string
	// BaseURL is the campaign server root, e.g. "http://host:7077".
	BaseURL string
	// Client issues the HTTP requests; nil means a fresh http.Client. The
	// fault-injection harness swaps in a scripted transport here.
	Client *http.Client
	// Jobs is the number of parallel cell executors (default 1); Batch is
	// how many cells one claim asks for (default Jobs).
	Jobs  int
	Batch int
	// Retries is the maximum number of execution attempts per cell before
	// the cell is reported failed; 0 means 1.
	Retries int
	// HTTPAttempts bounds the per-request retry loop (default
	// DefaultHTTPAttempts); BackoffBase/BackoffMax shape the deterministic
	// exponential backoff between attempts.
	HTTPAttempts int
	BackoffBase  time.Duration
	BackoffMax   time.Duration
	// Poll is the idle-claim delay (default DefaultPoll).
	Poll time.Duration
	// Sleep, when set, replaces the real clock between retries and polls —
	// the seam deterministic tests inject a fake scheduler through.
	Sleep func(time.Duration)
	// OnCell, when set, observes each executed cell.
	OnCell func(WorkerEvent)
}

func (w *Worker) name() string {
	if w.Name == "" {
		return "worker"
	}
	return w.Name
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{}
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if w.Sleep != nil {
		w.Sleep(d)
		return ctx.Err()
	}
	//lint:allowwallclock retry backoff and idle polling pace HTTP traffic, not simulated time; tests inject Sleep
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the deterministic delay before HTTP attempt n (0-based).
func (w *Worker) backoff(n int) time.Duration {
	base := w.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := w.BackoffMax
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base << uint(n)
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// post issues one JSON request with retry/backoff. Transport errors and 5xx
// responses retry; 4xx responses are terminal (the request itself is wrong).
func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("worker: encode %s: %w", path, err)
	}
	attempts := w.HTTPAttempts
	if attempts < 1 {
		attempts = DefaultHTTPAttempts
	}
	var last error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			if err := w.sleep(ctx, w.backoff(n-1)); err != nil {
				return err
			}
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("worker: build %s: %w", path, err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := w.client().Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		data, rerr := io.ReadAll(hresp.Body)
		hresp.Body.Close()
		if rerr != nil {
			last = rerr
			continue
		}
		if hresp.StatusCode >= 500 {
			last = fmt.Errorf("worker: %s: server error %d: %s", path, hresp.StatusCode, bytes.TrimSpace(data))
			continue
		}
		if hresp.StatusCode >= 400 {
			return fmt.Errorf("worker: %s: rejected %d: %s", path, hresp.StatusCode, bytes.TrimSpace(data))
		}
		if resp == nil {
			return nil
		}
		if err := json.Unmarshal(data, resp); err != nil {
			return fmt.Errorf("worker: decode %s response: %w", path, err)
		}
		return nil
	}
	return fmt.Errorf("worker: %s: %d attempts exhausted: %w", path, attempts, last)
}

// Run claims and executes cells until the server reports the campaign done,
// the context is cancelled, or the server becomes unreachable past the
// retry budget. A nil return means the campaign completed.
func (w *Worker) Run(ctx context.Context) error {
	jobs := w.Jobs
	if jobs < 1 {
		jobs = 1
	}
	batch := w.Batch
	if batch < 1 {
		batch = jobs
	}
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var claim ClaimResponse
		if err := w.post(ctx, PathClaim, ClaimRequest{Worker: w.name(), Max: batch}, &claim); err != nil {
			return err
		}
		if len(claim.Cells) == 0 {
			if claim.Done {
				return nil
			}
			wait := poll
			if claim.PollMillis > 0 {
				wait = time.Duration(claim.PollMillis) * time.Millisecond
			}
			if err := w.sleep(ctx, wait); err != nil {
				return err
			}
			continue
		}
		if err := w.executeClaim(ctx, claim.Cells, jobs); err != nil {
			return err
		}
	}
}

// executeClaim runs one claim's cells across the worker's executor pool and
// submits each record as it completes.
func (w *Worker) executeClaim(ctx context.Context, cells []WireCell, jobs int) error {
	if jobs > len(cells) {
		jobs = len(cells)
	}
	if jobs <= 1 {
		arena := experiment.NewArena()
		for _, wc := range cells {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := w.executeCell(ctx, wc, arena); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, jobs)
	next := make(chan WireCell)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		//lint:allowsharedstate remote-worker executor: the arena is created inside the goroutine and never crosses it; each cell's record leaves only through an HTTP submit
		go func(slot int) {
			defer wg.Done()
			arena := experiment.NewArena()
			for wc := range next {
				if errs[slot] != nil || ctx.Err() != nil {
					continue
				}
				errs[slot] = w.executeCell(ctx, wc, arena)
			}
		}(j)
	}
	for _, wc := range cells {
		if ctx.Err() != nil {
			break
		}
		//lint:allowsharedstate work-distribution hand-off: the wire cell is owned by exactly one executor goroutine from this send until its submit completes
		next <- wc
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// executeCell runs one cell with retries and submits its outcome. Execution
// failures are reported to the server (failing the campaign batch) and do
// not stop the worker; only transport exhaustion or cancellation do.
func (w *Worker) executeCell(ctx context.Context, wc WireCell, arena *experiment.Arena) error {
	// Verify the wire round trip before spending simulation time: the
	// locally-recomputed content key must match the lease. A mismatch
	// means the cell was corrupted in flight (or the builds disagree) —
	// executing it would poison the campaign with a wrong-keyed record.
	if got := wc.Cell.Key(); got != wc.Key {
		if err := w.post(ctx, PathFail, FailRequest{
			Worker: w.name(), Key: wc.Key, Attempts: 0,
			Error: fmt.Sprintf("cell key mismatch: leased %.12s, recomputed %.12s", wc.Key, got),
		}, nil); err != nil {
			return err
		}
		w.note(WorkerEvent{Key: wc.Key, Label: wc.Cell.Label(), Status: "fail",
			Err: fmt.Errorf("cell key mismatch")})
		return nil
	}
	attempts := w.Retries
	if attempts < 1 {
		attempts = 1
	}
	//lint:allowwallclock per-cell wall time feeds worker progress and server throughput accounting only
	start := time.Now()
	var rec *campaign.Record
	var err error
	tries := 0
	for tries = 1; tries <= attempts; tries++ {
		rec, err = wc.Cell.Execute(arena)
		if err == nil {
			break
		}
	}
	if tries > attempts {
		tries = attempts
	}
	//lint:allowwallclock per-cell wall time feeds worker progress and server throughput accounting only
	seconds := time.Since(start).Seconds()

	if err != nil {
		if perr := w.post(ctx, PathFail, FailRequest{
			Worker: w.name(), Key: wc.Key, Attempts: tries, Error: err.Error(),
		}, nil); perr != nil {
			return perr
		}
		w.note(WorkerEvent{Key: wc.Key, Label: wc.Cell.Label(), Status: "fail",
			Seconds: seconds, Attempts: tries, Err: err})
		return nil
	}

	var resp SubmitResponse
	if err := w.post(ctx, PathSubmit, SubmitRequest{
		Worker: w.name(), Attempts: tries, Seconds: seconds, Record: rec,
	}, &resp); err != nil {
		return err
	}
	w.note(WorkerEvent{Key: wc.Key, Label: wc.Cell.Label(), Status: resp.Status,
		Seconds: seconds, Attempts: tries})
	return nil
}

func (w *Worker) note(ev WorkerEvent) {
	if w.OnCell != nil {
		w.OnCell(ev)
	}
}

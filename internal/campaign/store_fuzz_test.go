// FuzzStoreReopen is the store's crash-consistency contract under arbitrary
// tail damage: whatever bytes a kill, a partial write, or outright corruption
// leaves in results.jsonl, reopening must either fail loudly or recover an
// exact prefix of complete record lines — never invent, extend, or reorder
// bytes — and the recovered store must accept appends that survive a second
// reopen. The same fuzz input also lands in manifest.json, where ReadManifest
// must parse or error but never panic or fabricate a manifest.

package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alertmanet/internal/experiment"
)

// fuzzRecord builds a small valid record line for corpus seeding.
func fuzzRecord(key string, seed int64) *Record {
	return &Record{
		Key: key, Kind: KindRemaining, Seed: seed,
		Remaining: &experiment.RemainingResult{Sums: []float64{float64(seed)}, Count: 1},
	}
}

// storeBytes renders records exactly as Store.Append writes them.
func storeBytes(t testing.TB, recs ...*Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzStoreReopen(f *testing.F) {
	clean := storeBytes(f, fuzzRecord("k1", 1), fuzzRecord("k2", 2))
	// Seeds: every truncation point of a 2-record store (the kill
	// signatures), plus flipped bytes, injected NULs, and garbage.
	for cut := 0; cut <= len(clean); cut += 7 {
		f.Add(clean[:cut])
	}
	f.Add(clean[:len(clean)-1]) // complete record, missing only its newline
	f.Add([]byte("{}\n"))
	f.Add([]byte("{\"key\":\"\"}\n"))
	f.Add(append([]byte{0}, clean...))
	f.Add(bytes.Replace(clean, []byte(`"key"`), []byte(`"kex"`), 1))
	f.Add([]byte("not json at all\x00\xff\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, resultsFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The same hostile bytes as a manifest: parse or fail, never panic.
		if err := os.WriteFile(filepath.Join(dir, manifestFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); err != nil {
			_ = err // a loud failure is an acceptable outcome
		}

		store, err := OpenStore(dir)
		if err != nil {
			return // loud failure: acceptable, nothing was silently dropped
		}
		recovered, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, recovered) {
			t.Fatalf("recovered store is not a prefix of the damaged file:\ndamaged:   %q\nrecovered: %q", data, recovered)
		}
		if n := len(recovered); n > 0 && recovered[n-1] != '\n' {
			t.Fatalf("recovered store does not end at a line boundary: %q", recovered)
		}
		// Every recovered line must be a complete, keyed record.
		lines := strings.Split(strings.TrimSuffix(string(recovered), "\n"), "\n")
		if len(recovered) == 0 {
			lines = nil
		}
		for i, line := range lines {
			var rec Record
			if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Key == "" {
				t.Fatalf("recovered line %d is not a keyed record: %q (%v)", i, line, err)
			}
		}

		// The recovered store must keep working: append a fresh record,
		// close, reopen, and find everything again with unchanged bytes.
		extra := fuzzRecord("fuzz-extra", 99)
		if err := store.Append(extra); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		want := append(append([]byte{}, recovered...), storeBytes(t, extra)...)
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after, want) {
			t.Fatalf("append after recovery corrupted the file:\nwant %q\ngot  %q", want, after)
		}
		reopened, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("second reopen after clean append: %v", err)
		}
		if _, ok := reopened.Get("fuzz-extra"); !ok {
			t.Fatal("appended record lost across reopen")
		}
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStoreReopenNewlineLessTail pins the torn-tail bug FuzzStoreReopen
// surfaced: a final record missing only its terminating newline (a write cut
// exactly at the closing brace) used to be counted as valid *plus* its
// absent newline, so the reopen truncate extended the file with a NUL byte
// and the next append fused two records onto one corrupt line. The tail must
// instead be truncated away and re-executed.
func TestStoreReopenNewlineLessTail(t *testing.T) {
	dir := t.TempDir()
	r1, r2 := fuzzRecord("k1", 1), fuzzRecord("k2", 2)
	clean := storeBytes(t, r1, r2)
	torn := clean[:len(clean)-1] // drop only the final newline
	path := filepath.Join(dir, resultsFile)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("newline-less tail must not count as recovered: want 1 record, got %d", store.Len())
	}
	if _, ok := store.Get("k2"); ok {
		t.Fatal("torn record k2 should have been truncated away")
	}
	// Re-append the lost record (what a resumed campaign does) and verify
	// the merged file is byte-identical to the never-torn store.
	if err := store.Append(r2); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("resume after newline-less tear is not byte-identical:\nwant %q\ngot  %q", clean, after)
	}
}

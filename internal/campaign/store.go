// The result store: one campaign directory holding results.jsonl (one
// Record per line, appended in the deterministic cell order the engine
// resolves them) and manifest.json (campaign summary, rewritten atomically
// after each batch). The JSONL file is the resume point: a killed campaign
// leaves a valid prefix — OpenStore truncates at the first incomplete or
// corrupt line — and a resumed run appends exactly the missing suffix, so
// the merged file is byte-identical to an uninterrupted run.

package campaign

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store filenames within a campaign directory.
const (
	resultsFile  = "results.jsonl"
	manifestFile = "manifest.json"
)

// Store is an append-only JSONL record store with an in-memory index.
type Store struct {
	dir string

	mu    sync.Mutex
	f     *os.File // nil for read-only stores
	recs  map[string]*Record
	order []string
}

// OpenStore opens (creating if needed) a campaign directory for appending.
// Existing records are indexed; a trailing incomplete or corrupt line —
// the signature of a killed run — is truncated away so the file is again a
// valid prefix to append to.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: create store dir: %w", err)
	}
	path := filepath.Join(dir, resultsFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	s := &Store{dir: dir, f: f, recs: map[string]*Record{}}
	valid, err := s.load(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: truncate partial store line: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seek store: %w", err)
	}
	return s, nil
}

// LoadStore opens an existing campaign directory read-only (for status and
// export). Appending to a loaded store is an error.
func LoadStore(dir string) (*Store, error) {
	path := filepath.Join(dir, resultsFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	defer f.Close()
	s := &Store{dir: dir, recs: map[string]*Record{}}
	if _, err := s.load(f); err != nil {
		return nil, err
	}
	return s, nil
}

// load indexes every complete record line and returns the byte offset just
// past the last complete line. A line only counts as complete when it is
// newline-terminated AND parses as a keyed record: a torn tail that happens
// to end exactly at a record's closing brace (no newline) must not be
// counted, or the truncate-to-valid on reopen would extend the file and the
// next append would fuse two records onto one corrupt line.
func (s *Store) load(f *os.File) (int64, error) {
	r := bufio.NewReaderSize(f, 1<<16)
	var valid int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// Bytes after the last newline are a torn tail — even if they
			// parse — and are truncated away by the caller.
			return valid, nil
		}
		if err != nil {
			return 0, fmt.Errorf("campaign: scan store: %w", err)
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Key == "" {
			// A corrupt or half-written line: everything before it stands.
			return valid, nil
		}
		if _, ok := s.recs[rec.Key]; !ok {
			rc := rec
			s.recs[rec.Key] = &rc
			s.order = append(s.order, rec.Key)
		}
		valid += int64(len(line))
	}
}

// Get returns the stored record for a cell key, if present.
func (s *Store) Get(key string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	return r, ok
}

// Append writes a record as one JSONL line and indexes it. Records already
// present are ignored, keeping the file free of duplicates.
func (s *Store) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("campaign: store %s opened read-only", s.dir)
	}
	if _, ok := s.recs[rec.Key]; ok {
		return nil
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("campaign: encode record: %w", err)
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("campaign: append record: %w", err)
	}
	s.recs[rec.Key] = rec
	s.order = append(s.order, rec.Key)
	return nil
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Keys returns the stored cell keys in append order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Records returns the stored records in append order.
func (s *Store) Records() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.recs[k])
	}
	return out
}

// Dir returns the campaign directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("campaign: sync store: %w", err)
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Manifest summarises a campaign run: identity, progress, and provenance.
type Manifest struct {
	// Name is the campaign's human label (e.g. "figures", "smoke").
	Name string `json:"name"`
	// CampaignHash is the SHA-256 over the store's cell keys in append
	// order — two stores with the same hash hold byte-identical results.
	CampaignHash string `json:"campaignHash"`
	// Cells is the total the campaign planned; Done is how many are in the
	// store.
	Cells int `json:"cells"`
	Done  int `json:"done"`
	// Executed/CacheHits/StoreHits/MemoHits break down where the last
	// batch's results came from.
	Executed  int `json:"executed"`
	CacheHits int `json:"cacheHits"`
	StoreHits int `json:"storeHits"`
	MemoHits  int `json:"memoHits"`
	// GoVersion and WallSeconds record provenance and cost.
	GoVersion   string  `json:"goVersion"`
	WallSeconds float64 `json:"wallSeconds"`
}

// WriteManifest atomically replaces the campaign manifest.
func (s *Store) WriteManifest(m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestFile)); err != nil {
		return fmt.Errorf("campaign: replace manifest: %w", err)
	}
	return nil
}

// campaignHash fingerprints a store's content: the SHA-256 over its cell
// keys in append order. Keys are content hashes of full cell configs and
// execution is deterministic, so equal campaign hashes mean byte-identical
// results files.
func campaignHash(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ReadManifest reads a campaign directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("campaign: parse manifest: %w", err)
	}
	return m, nil
}

// The store's wire format. Records must survive a JSON round trip
// bit-for-bit — a resumed campaign reduces store-loaded results through the
// same figure code as fresh ones and must produce identical series — so
// floats rely on Go's shortest-representation marshaling (exact for every
// finite float64) and the non-finite values plain encoding/json rejects
// (EnergyPerDelivered is +Inf when a run delivers nothing) are encoded as
// quoted strings.

package campaign

import (
	"encoding/json"
	"fmt"
	"strconv"

	"alertmanet/internal/experiment"
)

// JFloat is a float64 whose JSON encoding admits non-finite values: finite
// floats marshal as ordinary JSON numbers (shortest representation, exact
// round trip), while Inf/NaN marshal as the quoted strings "+Inf", "-Inf",
// "NaN" that strconv.ParseFloat accepts back.
type JFloat float64

// MarshalJSON encodes finite values as numbers, non-finite as strings.
func (f JFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "+Inf", "-Inf", "NaN":
		return json.Marshal(s)
	}
	return []byte(s), nil
}

// UnmarshalJSON accepts both encodings.
func (f *JFloat) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("campaign: non-finite float %q: %w", s, err)
		}
		*f = JFloat(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = JFloat(v)
	return nil
}

// resultJSON mirrors experiment.Result field-for-field (same Go field
// names — a reflection test enforces parity) with JFloat standing in for
// float64 so +Inf survives the store. Keeping the mirror explicit rather
// than reflect-converting at runtime keeps the wire format reviewable.
type resultJSON struct {
	Sent               int    `json:"sent"`
	Delivered          int    `json:"delivered"`
	DeliveryRate       JFloat `json:"deliveryRate"`
	MeanLatency        JFloat `json:"meanLatency"`
	HopsPerPacket      JFloat `json:"hopsPerPacket"`
	MeanRFs            JFloat `json:"meanRFs"`
	Participants       int    `json:"participants"`
	Cumulative         []int  `json:"cumulative,omitempty"`
	RouteJaccard       JFloat `json:"routeJaccard"`
	EnergyJoules       JFloat `json:"energyJoules"`
	EnergyPerDelivered JFloat `json:"energyPerDelivered"`
	LatencyP50         JFloat `json:"latencyP50"`
	LatencyP95         JFloat `json:"latencyP95"`
	LatencyP99         JFloat `json:"latencyP99"`
	Jitter             JFloat `json:"jitter"`
	LoadGini           JFloat `json:"loadGini"`
}

// encodeResult converts a simulation result to its wire form.
func encodeResult(r experiment.Result) resultJSON {
	return resultJSON{
		Sent:               r.Sent,
		Delivered:          r.Delivered,
		DeliveryRate:       JFloat(r.DeliveryRate),
		MeanLatency:        JFloat(r.MeanLatency),
		HopsPerPacket:      JFloat(r.HopsPerPacket),
		MeanRFs:            JFloat(r.MeanRFs),
		Participants:       r.Participants,
		Cumulative:         r.Cumulative,
		RouteJaccard:       JFloat(r.RouteJaccard),
		EnergyJoules:       JFloat(r.EnergyJoules),
		EnergyPerDelivered: JFloat(r.EnergyPerDelivered),
		LatencyP50:         JFloat(r.LatencyP50),
		LatencyP95:         JFloat(r.LatencyP95),
		LatencyP99:         JFloat(r.LatencyP99),
		Jitter:             JFloat(r.Jitter),
		LoadGini:           JFloat(r.LoadGini),
	}
}

// decode converts the wire form back to the simulation result.
func (r resultJSON) decode() experiment.Result {
	return experiment.Result{
		Sent:               r.Sent,
		Delivered:          r.Delivered,
		DeliveryRate:       float64(r.DeliveryRate),
		MeanLatency:        float64(r.MeanLatency),
		HopsPerPacket:      float64(r.HopsPerPacket),
		MeanRFs:            float64(r.MeanRFs),
		Participants:       r.Participants,
		Cumulative:         r.Cumulative,
		RouteJaccard:       float64(r.RouteJaccard),
		EnergyJoules:       float64(r.EnergyJoules),
		EnergyPerDelivered: float64(r.EnergyPerDelivered),
		LatencyP50:         float64(r.LatencyP50),
		LatencyP95:         float64(r.LatencyP95),
		LatencyP99:         float64(r.LatencyP99),
		Jitter:             float64(r.Jitter),
		LoadGini:           float64(r.LoadGini),
	}
}

// Record is one store line: a cell's identity and its outcome. Exactly one
// of Result/Remaining is set, matching Kind.
type Record struct {
	Key       string                      `json:"key"`
	Kind      Kind                        `json:"kind"`
	Seed      int64                       `json:"seed"`
	Protocol  string                      `json:"protocol,omitempty"`
	Result    *resultJSON                 `json:"result,omitempty"`
	Remaining *experiment.RemainingResult `json:"remaining,omitempty"`
}

package campaign

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"alertmanet/internal/experiment"
)

// TestJFloatRoundTrip: every float64 the simulator can produce — including
// the +Inf of EnergyPerDelivered on zero deliveries — survives the JSON
// encoding exactly.
func TestJFloatRoundTrip(t *testing.T) {
	values := []float64{
		0, 1, -1, 0.1, 1.0 / 3.0, math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.Pi, 87.3255554666001,
	}
	for _, v := range values {
		data, err := json.Marshal(JFloat(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back JFloat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if float64(back) != v {
			t.Fatalf("%v round-tripped to %v via %s", v, float64(back), data)
		}
	}
	// NaN compares unequal to itself; check via IsNaN.
	data, err := json.Marshal(JFloat(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	var back JFloat
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back)) {
		t.Fatalf("NaN round-tripped to %v via %s", float64(back), data)
	}
}

// TestResultJSONFieldParity: resultJSON must mirror experiment.Result
// field-for-field (same names, same order), so a new metric added to Result
// fails this test until the wire format carries it too.
func TestResultJSONFieldParity(t *testing.T) {
	rt := reflect.TypeOf(experiment.Result{})
	jt := reflect.TypeOf(resultJSON{})
	if rt.NumField() != jt.NumField() {
		t.Fatalf("experiment.Result has %d fields, resultJSON has %d — extend the wire format",
			rt.NumField(), jt.NumField())
	}
	for i := 0; i < rt.NumField(); i++ {
		rf, jf := rt.Field(i), jt.Field(i)
		if rf.Name != jf.Name {
			t.Errorf("field %d: Result.%s vs resultJSON.%s", i, rf.Name, jf.Name)
			continue
		}
		want := rf.Type
		if want.Kind() == reflect.Float64 {
			want = reflect.TypeOf(JFloat(0))
		}
		if jf.Type != want {
			t.Errorf("field %s: Result type %v should map to %v, resultJSON has %v",
				rf.Name, rf.Type, want, jf.Type)
		}
	}
}

// TestRecordRoundTrip: a full record — +Inf energy included — survives the
// store's line encoding bit-for-bit.
func TestRecordRoundTrip(t *testing.T) {
	res := experiment.Result{
		Sent: 20, Delivered: 0,
		DeliveryRate: 0, MeanLatency: 0.123456789012345,
		HopsPerPacket: 3.5, MeanRFs: 1.25, Participants: 17,
		Cumulative: []int{3, 7, 12}, RouteJaccard: 0.4,
		EnergyJoules: 1.7, EnergyPerDelivered: math.Inf(1),
		LatencyP50: 0.1, LatencyP95: 0.2, LatencyP99: 0.3,
		Jitter: 0.01, LoadGini: 0.33,
	}
	rj := encodeResult(res)
	rec := Record{Key: "abc", Kind: KindRun, Seed: 7, Protocol: "alert", Result: &rj}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if back.Result == nil {
		t.Fatal("result lost in round trip")
	}
	if got := back.Result.decode(); !reflect.DeepEqual(got, res) {
		t.Fatalf("result changed in round trip:\n%+v\nvs\n%+v", got, res)
	}
	// Encoding is deterministic: same record, same bytes.
	line2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(line) != string(line2) {
		t.Fatalf("re-encoding changed bytes:\n%s\nvs\n%s", line, line2)
	}
}

// TestCacheCorruptEntryIsMiss: a poisoned cache file is a miss, not an
// error — execution repairs it.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Key: "deadbeef", Kind: KindRemaining, Seed: 1,
		Remaining: &experiment.RemainingResult{Sums: []float64{1}, Count: 1}}
	if err := cache.Put(rec); err != nil {
		t.Fatal(err)
	}
	if got := cache.Get("deadbeef"); got == nil || got.Seed != 1 {
		t.Fatalf("cache should return the stored record, got %+v", got)
	}
	if got := cache.Get("feedface"); got != nil {
		t.Fatalf("missing key should miss, got %+v", got)
	}
	// Poison the entry: wrong key inside the file.
	bad := &Record{Key: "other", Kind: KindRemaining, Seed: 9}
	data, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path("deadbeef"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cache.Get("deadbeef"); got != nil {
		t.Fatalf("mismatched entry should miss, got %+v", got)
	}
}

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Each benchmark iteration regenerates the experiment behind its
// figure with a reduced seed count (shapes, not confidence intervals);
// cmd/figures produces the full-seeds output.
//
//	go test -bench=. -benchmem
package alert

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"alertmanet/internal/analysis"
	"alertmanet/internal/campaign"
	campaignserver "alertmanet/internal/campaign/server"
	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/live"
	"alertmanet/internal/telemetry"
)

// sink prevents dead-code elimination of benchmark results.
var sink any

// benchFig assigns a figure's series to the sink, failing on figure error.
func benchFig(b *testing.B) func(s []analysis.Series, err error) {
	return func(s []analysis.Series, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		sink = s
	}
}

// benchFig1 is benchFig for single-series figures.
func benchFig1(b *testing.B) func(s analysis.Series, err error) {
	return func(s analysis.Series, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		sink = s
	}
}

// ---- Analytical figures (Section 4) ----------------------------------------

// BenchmarkFig7aPossibleParticipants regenerates Fig. 7a: Eq. (7) curves of
// possible participating nodes versus partitions for N in {100, 200, 400}.
func BenchmarkFig7aPossibleParticipants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = analysis.Fig7aPossibleParticipants([]int{100, 200, 400}, 8, 1000)
	}
}

// BenchmarkFig7bExpectedRFs regenerates Fig. 7b: Eq. (10) expected random
// forwarders versus partitions.
func BenchmarkFig7bExpectedRFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = analysis.Fig7bExpectedRFs(8)
	}
}

// BenchmarkFig9aRemainingNodes regenerates Fig. 9a: Eq. (15) remaining
// destination-zone nodes over time by density.
func BenchmarkFig9aRemainingNodes(b *testing.B) {
	times := []float64{0, 5, 10, 15, 20, 25, 30}
	for i := 0; i < b.N; i++ {
		sink = analysis.Fig9aRemainingNodes([]int{100, 200, 400}, 5, 1000, 2, times)
	}
}

// BenchmarkFig9bRemainingNodes regenerates Fig. 9b: Eq. (15) by speed.
func BenchmarkFig9bRemainingNodes(b *testing.B) {
	times := []float64{0, 5, 10, 15, 20, 25, 30}
	for i := 0; i < b.N; i++ {
		sink = analysis.Fig9bRemainingNodes(200, 5, 1000, []float64{1, 2, 4}, times)
	}
}

// ---- Simulation figures (Section 5) -----------------------------------------

// BenchmarkFig10aParticipatingNodes regenerates Fig. 10a: cumulative actual
// participating nodes over 20 packets, ALERT vs GPSR at 100 and 200 nodes.
func BenchmarkFig10aParticipatingNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig10a(experiment.DirectRunner{}, 20, 1))
	}
}

// BenchmarkFig10bParticipantsVsN regenerates Fig. 10b.
func BenchmarkFig10bParticipantsVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig10b(experiment.DirectRunner{}, 20, 1))
	}
}

// BenchmarkFig11RandomForwarders regenerates Fig. 11: simulated random
// forwarders versus partitions.
func BenchmarkFig11RandomForwarders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig1(b)(experiment.Fig11(experiment.DirectRunner{}, 7, 1))
	}
}

// BenchmarkFig12RemainingNodes regenerates Fig. 12: simulated remaining
// zone nodes over time by density.
func BenchmarkFig12RemainingNodes(b *testing.B) {
	times := []float64{0, 10, 20, 30, 40}
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig12(experiment.DirectRunner{}, times, 2))
	}
}

// BenchmarkFig13aRemainingBySpeed regenerates Fig. 13a.
func BenchmarkFig13aRemainingBySpeed(b *testing.B) {
	times := []float64{0, 10, 20, 30}
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig13a(experiment.DirectRunner{}, times, 2))
	}
}

// BenchmarkFig13bRequiredDensity regenerates Fig. 13b: the density needed
// to keep 4 nodes in the zone after 10 s, versus speed.
func BenchmarkFig13bRequiredDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig1(b)(experiment.Fig13b(experiment.DirectRunner{}, 4, []float64{2, 8}, 1))
	}
}

// BenchmarkFig14aLatency regenerates Fig. 14a: latency versus network size
// for all four protocols.
func BenchmarkFig14aLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig14a(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkFig14bLatencyVsSpeed regenerates Fig. 14b.
func BenchmarkFig14bLatencyVsSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig14b(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkFig15aHops regenerates Fig. 15a: hops per packet versus network
// size, including ALARM's dissemination series.
func BenchmarkFig15aHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig15a(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkFig15bHopsVsSpeed regenerates Fig. 15b.
func BenchmarkFig15bHopsVsSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig15b(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkFig16aDelivery regenerates Fig. 16a: delivery rate versus
// network size.
func BenchmarkFig16aDelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig16a(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkFig16bDeliveryVsSpeed regenerates Fig. 16b with and without
// destination updates.
func BenchmarkFig16bDeliveryVsSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig16b(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkFig17MobilityModels regenerates Fig. 17: ALERT's delay under
// random waypoint versus group mobility.
func BenchmarkFig17MobilityModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig(b)(experiment.Fig17(experiment.DirectRunner{}, 1))
	}
}

// BenchmarkTable1Taxonomy regenerates Table 1.
func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiment.FormatTable1()
	}
}

// ---- Section 3 attack experiments -------------------------------------------

// BenchmarkIntersectionAttack runs the Section 3.3 attack session with the
// countermeasure off (the attacker's best case).
func BenchmarkIntersectionAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiment.IntersectionAttack(int64(i+1), 25, false)
	}
}

// BenchmarkTimingAttack runs the Section 3.2 correlation attack on ALERT.
func BenchmarkTimingAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiment.TimingAttackScore(int64(i+1), experiment.ALERT, 20)
	}
}

// ---- Ablations (design choices called out in DESIGN.md) --------------------

// BenchmarkAblationK sweeps the destination-anonymity parameter k: larger k
// means a bigger zone (fewer partitions), fewer random forwarders, and a
// costlier final broadcast. Reported via per-iteration metrics.
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{3, 6, 12, 25} {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			var hops, rfs float64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Alert.K = k
				sc.Duration = 30
				r := experiment.MustRun(sc)
				hops += r.HopsPerPacket
				rfs += r.MeanRFs
			}
			b.ReportMetric(hops/float64(b.N), "hops/pkt")
			b.ReportMetric(rfs/float64(b.N), "RFs/pkt")
		})
	}
}

// BenchmarkAblationNotifyAndGo measures the source-anonymity mechanism's
// cost: cover traffic and added delay versus the anonymity-set size.
func BenchmarkAblationNotifyAndGo(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Alert.NotifyAndGo = on
				sc.Duration = 30
				lat += experiment.MustRun(sc).MeanLatency
			}
			b.ReportMetric(lat/float64(b.N)*1e3, "ms/pkt")
		})
	}
}

// BenchmarkAblationIntersectionGuard measures the two-step multicast's
// delivery-latency cost against its anonymity benefit.
func BenchmarkAblationIntersectionGuard(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var lat, del float64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Alert.IntersectionGuard = on
				sc.Duration = 30
				r := experiment.MustRun(sc)
				lat += r.MeanLatency
				del += r.DeliveryRate
			}
			b.ReportMetric(lat/float64(b.N)*1e3, "ms/pkt")
			b.ReportMetric(del/float64(b.N), "delivery")
		})
	}
}

// BenchmarkAblationHelloInterval measures the sensitivity of delivery to
// neighbor-table staleness (hello beacon period) at 8 m/s.
func BenchmarkAblationHelloInterval(b *testing.B) {
	for _, interval := range []float64{0.5, 1, 2, 4} {
		interval := interval
		b.Run(benchFloat("hello", interval), func(b *testing.B) {
			var del float64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Speed = 8
				sc.HelloInterval = interval
				sc.Duration = 30
				del += experiment.MustRun(sc).DeliveryRate
			}
			b.ReportMetric(del/float64(b.N), "delivery")
		})
	}
}

// BenchmarkProtocolThroughput measures raw simulator throughput per
// protocol: one default 100-second workload per iteration.
func BenchmarkProtocolThroughput(b *testing.B) {
	for _, p := range []experiment.ProtocolName{
		experiment.ALERT, experiment.GPSR, experiment.ALARM, experiment.AO2P,
	} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Protocol = p
				sink = experiment.MustRun(sc)
			}
		})
	}
}

// BenchmarkTelemetryOverhead pins the observability layer's cost contract
// (DESIGN.md, "Observability"): "disabled" runs a full default ALERT
// scenario with the tap nil — every emit site reduces to a branch — and
// must stay within noise of the pre-telemetry simulator; "enabled" streams
// every layer to a discarding writer, bounding the cost a traced run pays.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := experiment.DefaultScenario()
			sc.Seed = int64(i + 1)
			sink = experiment.MustRun(sc)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := experiment.DefaultScenario()
			sc.Seed = int64(i + 1)
			tap := telemetry.New(io.Discard, telemetry.LayerAll)
			r, _, err := experiment.RunWorld(sc, tap)
			if err != nil {
				b.Fatal(err)
			}
			sink = r
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func benchFloat(prefix string, v float64) string {
	whole := int(v)
	frac := int(v*10) % 10
	if frac == 0 {
		return prefix + "=" + itoa(whole) + "s"
	}
	return prefix + "=" + itoa(whole) + "." + itoa(frac) + "s"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[p:])
}

// BenchmarkAblationPartitionOrder compares the paper's alternating
// horizontal/vertical cuts against always cutting the same axis: the
// alternation keeps zones squarish so each temporary destination approaches
// D (Section 2.3), which shows up as fewer hops per packet.
func BenchmarkAblationPartitionOrder(b *testing.B) {
	for _, fixed := range []bool{false, true} {
		fixed := fixed
		name := "alternating"
		if fixed {
			name = "fixed-axis"
		}
		b.Run(name, func(b *testing.B) {
			var hops, del float64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Alert.FixedAxisPartition = fixed
				sc.Duration = 30
				r := experiment.MustRun(sc)
				hops += r.HopsPerPacket
				del += r.DeliveryRate
			}
			b.ReportMetric(hops/float64(b.N), "hops/pkt")
			b.ReportMetric(del/float64(b.N), "delivery")
		})
	}
}

// BenchmarkIntersectionRemedy compares the per-packet cost growth of the
// two Section 3.3 remedies over a long session: ZAP's zone enlargement
// versus ALERT's two-step multicast.
func BenchmarkIntersectionRemedy(b *testing.B) {
	for _, alert := range []bool{false, true} {
		alert := alert
		name := "zap-enlarge"
		if alert {
			name = "alert-guard"
		}
		b.Run(name, func(b *testing.B) {
			var growth float64
			for i := 0; i < b.N; i++ {
				r := experiment.IntersectionRemedyCost(int64(i+1), 15, alert)
				growth += r.HopsLast - r.HopsFirst
			}
			b.ReportMetric(growth/float64(b.N), "hop-growth")
		})
	}
}

// BenchmarkDoSAttack measures delivery under the Section 3.1
// compromised-relay attack for ALERT and GPSR.
func BenchmarkDoSAttack(b *testing.B) {
	for _, p := range []experiment.ProtocolName{experiment.ALERT, experiment.GPSR} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var after float64
			for i := 0; i < b.N; i++ {
				after += experiment.DoSAttack(int64(i+1), p, 20, 3).UnderAttackDelivery
			}
			b.ReportMetric(after/float64(b.N), "delivery-under-dos")
		})
	}
}

// BenchmarkEnergyPerDelivered measures each protocol's energy per delivered
// packet (transmission + cryptography), supporting the paper's claim that
// ALERT's cost sits far below the hop-by-hop-encryption protocols.
func BenchmarkEnergyPerDelivered(b *testing.B) {
	for _, p := range []experiment.ProtocolName{
		experiment.ALERT, experiment.GPSR, experiment.ALARM, experiment.AO2P,
	} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(i + 1)
				sc.Protocol = p
				sc.Duration = 30
				e += experiment.MustRun(sc).EnergyPerDelivered
			}
			b.ReportMetric(e/float64(b.N)*1e3, "mJ/pkt")
		})
	}
}

// BenchmarkShardedThroughput measures the sharded event engine on the
// 10k-node field it exists for: GPSR (the pure-geographic hot path) on a
// 7000 m square with light CBR traffic, at 1, 2, 4 and 8 shards. Every
// shard count simulates the byte-identical run — the determinism contract —
// so the events/s column is a clean strong-scaling measurement of the
// fork-join construction and position-sweep phases. On a single-CPU runner
// the worker degree clamps to 1 and all rows read alike; the scaling claim
// needs a multi-core machine (see EXPERIMENTS.md, "Sharded engine scaling").
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		// "=" rather than "-": benchjson strips a trailing -N as the
		// GOMAXPROCS suffix, which would collapse the four rows to one name.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				sc := experiment.DefaultScenario()
				sc.Protocol = experiment.GPSR
				sc.N = 10000
				sc.Field = geo.Rect{Max: geo.Point{X: 7000, Y: 7000}}
				sc.Pairs = 40
				sc.Duration = 5
				sc.DrainTime = 2
				sc.Seed = int64(i + 1)
				sc.Shards = shards
				res, w, err := experiment.RunWorld(sc, nil)
				if err != nil {
					b.Fatal(err)
				}
				events += w.Eng.Processed()
				sink = res
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkCampaignThroughput measures the campaign engine's end-to-end
// cell throughput at full parallelism — the cells/minute figure EXPERIMENTS.md
// quotes for `make figures` — with no cache or store, so the number is pure
// scheduling plus simulation. Each iteration uses a fresh engine (the memo
// would otherwise make every iteration after the first free).
func BenchmarkCampaignThroughput(b *testing.B) {
	cells := make([]experiment.Scenario, 8)
	for i := range cells {
		sc := experiment.DefaultScenario()
		sc.N = 100
		sc.Duration = 20
		sc.Seed = int64(i + 1)
		cells[i] = sc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := &campaign.Engine{Jobs: runtime.NumCPU()}
		res, err := eng.RunBatch(cells)
		if err != nil {
			b.Fatal(err)
		}
		sink = res
	}
	b.ReportMetric(float64(b.N*len(cells))/b.Elapsed().Minutes(), "cells/min")
}

// BenchmarkCampaignThroughputDistributed is BenchmarkCampaignThroughput with
// the distribution tax included: the same 8-cell batch flows through the
// campaign server's lease queue and real HTTP claim/submit round trips to
// two in-process workers. The cells/min delta against the local benchmark is
// the protocol's overhead — it should be noise, since cell execution
// dominates JSON framing by orders of magnitude.
func BenchmarkCampaignThroughputDistributed(b *testing.B) {
	cells := make([]experiment.Scenario, 8)
	for i := range cells {
		sc := experiment.DefaultScenario()
		sc.N = 100
		sc.Duration = 20
		sc.Seed = int64(i + 1)
		cells[i] = sc
	}
	jobs := runtime.NumCPU()/2 + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := &campaignserver.Queue{Lease: time.Minute}
		ts := httptest.NewServer((&campaignserver.Server{Queue: q}).Handler())
		eng := &campaign.Engine{Exec: q}
		var wg sync.WaitGroup
		werrs := make([]error, 2)
		for wi := range werrs {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := &campaignserver.Worker{
					Name: fmt.Sprintf("bench-%d", wi), BaseURL: ts.URL,
					Jobs: jobs, Poll: time.Millisecond,
				}
				werrs[wi] = w.Run(context.Background())
			}(wi)
		}
		res, err := eng.RunBatch(cells)
		if err != nil {
			b.Fatal(err)
		}
		q.Finish()
		wg.Wait()
		for _, werr := range werrs {
			if werr != nil {
				b.Fatal(werr)
			}
		}
		ts.Close()
		sink = res
	}
	b.ReportMetric(float64(b.N*len(cells))/b.Elapsed().Minutes(), "cells/min")
}

// BenchmarkLiveLoopbackThroughput measures the live data plane: a 25-node
// static fleet of real UDP daemons on loopback runs a 10-second emulated
// CBR scenario at timescale 0 minus the wall-clock march (timescale 0.01
// compresses it to ~150 ms), and the metric is datagrams through the
// sockets per wall second — the envelope codec, pump goroutines, emulated
// medium and router all on the measured path.
func BenchmarkLiveLoopbackThroughput(b *testing.B) {
	sc := experiment.DefaultScenario()
	sc.Protocol = experiment.ALERT
	sc.N = 25
	sc.Field = geo.Rect{Max: geo.Point{X: 600, Y: 600}}
	sc.Mobility = experiment.Static
	sc.Duration = 10
	sc.DrainTime = 2
	sc.Pairs = 2
	sc.Interval = 2
	sc.LocUpdates = false
	var datagrams uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := live.RunFleet(sc, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Delivered == 0 {
			b.Fatal("live bench fleet delivered nothing")
		}
		datagrams += sum.Counters.TxDatagrams
		sink = sum
	}
	b.ReportMetric(float64(datagrams)/b.Elapsed().Seconds(), "frames/s")
}

// Public access to the paper's Section 4 closed forms and Section 3 attack
// experiments, so downstream users can reproduce the analytical figures and
// the anonymity evaluations without touching internal packages.

package alert

import (
	"alertmanet/internal/analysis"
	"alertmanet/internal/experiment"
)

// ExpectedRandomForwarders evaluates Equation (10): the expected number of
// random forwarders on an ALERT route with h partitions (Fig. 7b's line).
func ExpectedRandomForwarders(h int) float64 {
	return analysis.ExpectedRFs(h)
}

// PossibleParticipatingNodes evaluates Equation (7): the expected number of
// nodes that can take part in one S-D routing, for n nodes on a square
// field of the given side length with h partitions (Fig. 7a).
func PossibleParticipatingNodes(n, h int, fieldSide float64) float64 {
	return analysis.PossibleParticipants(n, h, fieldSide, fieldSide)
}

// RemainingNodes evaluates Equation (15): the expected number of the
// destination zone's original nodes still inside after t seconds, for n
// nodes on a square field partitioned h times with node speed v (Fig. 9).
func RemainingNodes(t float64, n, h int, fieldSide, speed float64) float64 {
	return analysis.RemainingNodes(t, n, h, fieldSide, speed)
}

// RequiredDensity inverts Equation (15): the node count needed to keep
// `remaining` nodes in the destination zone after t seconds at speed v
// (Fig. 13b's analytical counterpart).
func RequiredDensity(remaining, t float64, h int, fieldSide, speed float64) float64 {
	return analysis.RequiredDensity(remaining, t, h, fieldSide, speed)
}

// IntersectionAttackResult reports a Section 3.3 attack session.
type IntersectionAttackResult struct {
	// Waves is how many per-packet recipient sets the attacker observed.
	Waves int
	// Candidates is how many nodes survived the recipient-set
	// intersection.
	Candidates int
	// DestinationCandidate reports whether the true destination is still
	// among them — the attack's necessary condition.
	DestinationCandidate bool
	// Exposed reports whether the intersection pinned the destination
	// down exactly.
	Exposed bool
}

// RunIntersectionAttack mounts the intersection attack on a long ALERT
// session, with or without the two-step multicast countermeasure.
func RunIntersectionAttack(seed int64, packets int, countermeasure bool) IntersectionAttackResult {
	r := experiment.IntersectionAttack(seed, packets, countermeasure)
	return IntersectionAttackResult{
		Waves:                r.Waves,
		Candidates:           r.Candidates,
		DestinationCandidate: r.DstCandidate,
		Exposed:              r.Exposed,
	}
}

// SourceAnonymitySet measures the notify-and-go mechanism (Section 2.6):
// how many candidate transmitters an eavesdropper parked on the source saw
// during a send, and the source's neighbor count eta.
func SourceAnonymitySet(seed int64, notifyAndGo bool) (anonymitySet, neighbors int) {
	r := experiment.SourceAnonymity(seed, notifyAndGo)
	return r.AnonymitySet, r.Neighbors
}

// TimingAttackScore runs a CBR session and returns how well a two-point
// eavesdropper can correlate departure and arrival times (Section 3.2):
// near 1 for fixed-path protocols, lower for ALERT.
func TimingAttackScore(seed int64, protocol Protocol, packets int) float64 {
	return experiment.TimingAttackScore(seed, experiment.ProtocolName(protocol), packets)
}

// DoSAttackResult reports a Section 3.1 denial-of-service experiment.
type DoSAttackResult struct {
	// BaselineDelivery is the delivery rate before the compromise.
	BaselineDelivery float64
	// UnderAttackDelivery is the delivery rate after the adversary turns
	// relays of the first observed route into packet sinks.
	UnderAttackDelivery float64
	// Compromised is how many nodes were subverted.
	Compromised int
}

// RunDoSAttack measures how a session survives when the adversary
// compromises `compromise` relays of its first observed route: GPSR keeps
// feeding the dead nodes, ALERT routes around them (Section 3.1).
func RunDoSAttack(seed int64, protocol Protocol, packets, compromise int) DoSAttackResult {
	r := experiment.DoSAttack(seed, experiment.ProtocolName(protocol), packets, compromise)
	return DoSAttackResult{
		BaselineDelivery:    r.BaselineDelivery,
		UnderAttackDelivery: r.UnderAttackDelivery,
		Compromised:         r.Compromised,
	}
}

// InterceptionProbability measures Section 3.1's interception resilience:
// the fraction of a session's packets that a fixed set of compromised
// nodes (placed on the first observed route) captures.
func InterceptionProbability(seed int64, protocol Protocol, packets, compromised int) float64 {
	return experiment.InterceptionExperiment(seed,
		experiment.ProtocolName(protocol), packets, compromised)
}

// ZoneCoveragePercent evaluates Section 3.3's coverage expression for the
// two-step multicast: the fraction of destination-zone nodes that receive a
// packet when m of k nodes get step one and a fraction pc of the rest hear
// the re-broadcast.
func ZoneCoveragePercent(m, k int, pc float64) float64 {
	return analysis.CoveragePercent(m, k, pc)
}

// SourceLocationError measures Section 2.1's triangulation risk: how far an
// eavesdropper's estimate of the source position (the first transmission it
// sees in the send window) lands from the true source, with or without
// notify-and-go cover traffic. Returns a negative value if the observer saw
// nothing.
func SourceLocationError(seed int64, notifyAndGo bool) float64 {
	return experiment.SourceLocationError(seed, notifyAndGo)
}

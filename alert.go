// Package alert is a Go reproduction of "ALERT: An Anonymous Location-Based
// Efficient Routing Protocol in MANETs" (Shen & Zhao, ICPP 2011 / IEEE TMC
// 2012). It bundles a discrete-event MANET simulator (mobility, radio,
// location service, GPSR), the ALERT protocol itself, the AO2P and ALARM
// comparators, the paper's adversary models, and the evaluation harness
// that regenerates every figure and table of the paper.
//
// This package is the public facade. Quick start:
//
//	cfg := alert.DefaultConfig()
//	res, err := alert.Run(cfg)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("delivery %.2f, latency %.1f ms\n",
//		res.DeliveryRate, res.MeanLatencySeconds*1e3)
//
// For interactive control (send individual messages, observe deliveries,
// mount attacks) build a Network:
//
//	net, err := alert.NewNetwork(cfg)
//	net.OnDeliver(func(d alert.Delivery) { ... })
//	net.Send(3, 117, []byte("hello"))
//	net.RunFor(10) // simulated seconds
//
// The deeper layers live under internal/: geo (zone partition), sim (event
// engine), mobility, medium, gpsr, core (ALERT), ao2p, alarm, adversary,
// analysis (the paper's closed forms), and experiment (figures).
package alert

import (
	"fmt"

	"alertmanet/internal/core"
	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/stats"
	"alertmanet/internal/trace"
)

// sum converts an internal stats summary into the public Summary.
func sum(s stats.Summary) Summary {
	return Summary{N: s.N, Mean: s.Mean, StdDev: s.StdDev, CI95: s.CI95}
}

// Protocol selects the routing protocol under test.
type Protocol string

// The four protocols of the paper's evaluation.
const (
	ALERT Protocol = "alert" // the paper's contribution
	GPSR  Protocol = "gpsr"  // baseline geographic routing
	ALARM Protocol = "alarm" // proactive, redundant-traffic comparator
	AO2P  Protocol = "ao2p"  // hop-by-hop-encryption comparator
	// ZAP is an extra baseline beyond the paper's set: destination
	// cloaking with zone flooding [13].
	ZAP Protocol = "zap"
)

// Workload selects the traffic model.
type Workload string

// Traffic models: the paper's CBR stream, a Poisson process of the same
// mean rate, and an on/off burst source.
const (
	CBR         Workload = "cbr"
	PoissonLoad Workload = "poisson"
	BurstLoad   Workload = "burst"
)

// Mobility selects the movement model.
type Mobility string

// Movement models from Section 5.1.
const (
	RandomWaypoint Mobility = "rwp"
	GroupMobility  Mobility = "group"
	Static         Mobility = "static"
)

// Config describes one simulated MANET and workload. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Seed makes the whole run reproducible.
	Seed int64
	// Protocol is the routing protocol under test.
	Protocol Protocol

	// Nodes is the network size N (default 200).
	Nodes int
	// FieldSize is the square field's side length in meters (1000).
	FieldSize float64
	// Speed is the node speed in m/s (2).
	Speed float64
	// Mobility is the movement model; Groups/GroupRange configure the
	// group model (10 groups, 150 m).
	Mobility   Mobility
	Groups     int
	GroupRange float64

	// Duration is the simulated seconds of workload (100). No traffic
	// model sends after it; the run then drains for DrainSeconds.
	Duration float64
	// DrainSeconds is how long the run keeps executing after Duration so
	// in-flight packets can finish (10 when zero).
	DrainSeconds float64
	// Pairs is the number of concurrent S-D pairs (10).
	Pairs int
	// IntervalSeconds is the mean packet interval per pair (2).
	IntervalSeconds float64
	// Traffic selects the workload model (CBR default).
	Traffic Workload
	// PacketSize is the data packet size in bytes (512).
	PacketSize int

	// K is ALERT's destination k-anonymity parameter; the partition
	// depth follows H = log2(N/K) unless PartitionH overrides it.
	K          int
	PartitionH int
	// NotifyAndGo enables ALERT's source-anonymity cover traffic.
	NotifyAndGo bool
	// IntersectionGuard enables ALERT's two-step m-of-k multicast.
	IntersectionGuard bool
	// Confirm enables destination confirmations with retransmission.
	Confirm bool
	// NAKs enables gap-triggered negative acknowledgements.
	NAKs bool

	// LossRate injects random frame loss.
	LossRate float64
	// LocationUpdates toggles the location service's periodic position
	// refresh — the paper's "with/without destination update".
	LocationUpdates bool
}

// DefaultConfig returns the paper's Section 5.2 parameters with ALERT as
// the protocol under test.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Protocol:        ALERT,
		Nodes:           200,
		FieldSize:       1000,
		Speed:           2,
		Mobility:        RandomWaypoint,
		Groups:          10,
		GroupRange:      150,
		Duration:        100,
		Pairs:           10,
		IntervalSeconds: 2,
		PacketSize:      512,
		K:               6,
		LocationUpdates: true,
	}
}

// scenario translates the public Config into the internal Scenario.
func (c Config) scenario() experiment.Scenario {
	sc := experiment.DefaultScenario()
	sc.Seed = c.Seed
	sc.Protocol = experiment.ProtocolName(c.Protocol)
	if c.Nodes > 0 {
		sc.N = c.Nodes
	}
	if c.FieldSize > 0 {
		sc.Field.Max.X = c.FieldSize
		sc.Field.Max.Y = c.FieldSize
	}
	sc.Speed = c.Speed
	if c.Mobility != "" {
		sc.Mobility = experiment.MobilityName(c.Mobility)
	}
	if c.Groups > 0 {
		sc.Groups = c.Groups
	}
	if c.GroupRange > 0 {
		sc.GroupRange = c.GroupRange
	}
	if c.Duration > 0 {
		sc.Duration = c.Duration
	}
	if c.DrainSeconds > 0 {
		sc.DrainTime = c.DrainSeconds
	}
	if c.Pairs > 0 {
		sc.Pairs = c.Pairs
	}
	if c.IntervalSeconds > 0 {
		sc.Interval = c.IntervalSeconds
	}
	if c.PacketSize > 0 {
		sc.PacketSize = c.PacketSize
	}
	if c.K > 0 {
		sc.Alert.K = c.K
	}
	sc.Alert.H = c.PartitionH
	sc.Alert.NotifyAndGo = c.NotifyAndGo
	sc.Alert.IntersectionGuard = c.IntersectionGuard
	sc.Alert.Confirm = c.Confirm
	sc.Alert.NAKs = c.NAKs
	sc.LossRate = c.LossRate
	sc.LocUpdates = c.LocationUpdates
	if c.Traffic != "" {
		sc.Workload = experiment.WorkloadName(c.Traffic)
	}
	return sc
}

// PresetInfo describes one named scenario preset.
type PresetInfo struct {
	Name        string
	Description string
}

// ListPresets returns the built-in scenario presets.
func ListPresets() []PresetInfo {
	var out []PresetInfo
	for _, p := range experiment.Presets() {
		out = append(out, PresetInfo{Name: p.Name, Description: p.Description})
	}
	return out
}

// RunPreset executes a named preset under the given seed.
func RunPreset(name string, seed int64) (Result, error) {
	p, err := experiment.FindPreset(name)
	if err != nil {
		return Result{}, err
	}
	sc := p.Scenario
	sc.Seed = seed
	r, err := experiment.Run(sc)
	if err != nil {
		return Result{}, err
	}
	return resultFrom(r), nil
}

// Result summarizes one run with the paper's metrics.
type Result struct {
	// PacketsSent is the number of application packets issued.
	PacketsSent int
	// PacketsDelivered is the exact number that arrived.
	PacketsDelivered int
	// DeliveryRate is delivered / sent (metric 6).
	DeliveryRate float64
	// MeanLatencySeconds is the average end-to-end delay including
	// routing and cryptography (metric 5).
	MeanLatencySeconds float64
	// HopsPerPacket is accumulated hops over packets sent, including
	// protocol overhead traffic (metric 4).
	HopsPerPacket float64
	// MeanRandomForwarders is ALERT's average RF count (metric 2).
	MeanRandomForwarders float64
	// ParticipatingNodes is the cumulative count of distinct relays
	// (metric 1).
	ParticipatingNodes int
	// RouteSimilarity is the mean Jaccard similarity of consecutive
	// packets' relay sets for a pair: near 1 for shortest-path routing,
	// near 0 for ALERT's randomized routes.
	RouteSimilarity float64
	// EnergyPerDeliveredJoules is radio transmission plus cryptographic
	// energy divided by delivered packets (+Inf if nothing arrived).
	EnergyPerDeliveredJoules float64
}

// resultFrom converts an internal run result into the public Result.
func resultFrom(r experiment.Result) Result {
	return Result{
		PacketsSent:              r.Sent,
		PacketsDelivered:         r.Delivered,
		DeliveryRate:             r.DeliveryRate,
		MeanLatencySeconds:       r.MeanLatency,
		HopsPerPacket:            r.HopsPerPacket,
		MeanRandomForwarders:     r.MeanRFs,
		ParticipatingNodes:       r.Participants,
		RouteSimilarity:          r.RouteJaccard,
		EnergyPerDeliveredJoules: r.EnergyPerDelivered,
	}
}

// Run executes one full workload and returns its metrics. An invalid
// configuration (unknown protocol, non-positive duration, ...) returns an
// error rather than panicking.
func Run(cfg Config) (Result, error) {
	r, err := experiment.Run(cfg.scenario())
	if err != nil {
		return Result{}, err
	}
	return resultFrom(r), nil
}

// Summary is a mean with spread over independent seeded runs.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the 95% Student-t confidence half-width (the paper's
	// "I"-shaped intervals over 30 runs).
	CI95 float64
}

// Aggregate holds multi-run summaries of each metric.
type Aggregate struct {
	DeliveryRate         Summary
	MeanLatencySeconds   Summary
	HopsPerPacket        Summary
	MeanRandomForwarders Summary
	ParticipatingNodes   Summary
	RouteSimilarity      Summary
}

// RunSeeds runs the workload under `seeds` independent seeds (the paper
// uses 30) and aggregates the metrics.
func RunSeeds(cfg Config, seeds int) (Aggregate, error) {
	a, err := experiment.RunSeeds(cfg.scenario(), seeds)
	if err != nil {
		return Aggregate{}, err
	}
	return Aggregate{
		DeliveryRate:         sum(a.DeliveryRate),
		MeanLatencySeconds:   sum(a.MeanLatency),
		HopsPerPacket:        sum(a.HopsPerPacket),
		MeanRandomForwarders: sum(a.MeanRFs),
		ParticipatingNodes:   sum(a.Participants),
		RouteSimilarity:      sum(a.RouteJaccard),
	}, nil
}

// Delivery reports one application-level delivery at the destination.
type Delivery struct {
	Src, Dst int
	Seq      int
	Data     []byte
	// At is the simulated delivery time in seconds.
	At float64
}

// Network is an interactive simulation: send individual messages, advance
// virtual time, inspect metrics. Not safe for concurrent use.
type Network struct {
	w         *experiment.World
	onDeliver func(Delivery)
}

// NewNetwork builds a simulated MANET from the config without starting any
// traffic. An invalid configuration returns an error.
func NewNetwork(cfg Config) (*Network, error) {
	w, err := experiment.Build(cfg.scenario())
	if err != nil {
		return nil, err
	}
	n := &Network{w: w}
	if n.w.Alert != nil {
		n.w.Alert.OnDeliver = func(src, dst medium.NodeID, seq int, data []byte, t float64) {
			if n.onDeliver != nil {
				n.onDeliver(Delivery{
					Src: int(src), Dst: int(dst), Seq: seq, Data: data, At: t,
				})
			}
		}
	}
	return n, nil
}

// Nodes returns the network size.
func (n *Network) Nodes() int { return n.w.Net.N() }

// Now returns the current simulated time in seconds.
func (n *Network) Now() float64 { return n.w.Eng.Now() }

// OnDeliver registers a callback for application deliveries (ALERT only).
func (n *Network) OnDeliver(fn func(Delivery)) { n.onDeliver = fn }

// Send routes one message from node src to node dst with the configured
// protocol. It returns an error for invalid node ids; the transmission
// itself is asynchronous — advance time with RunFor or RunUntil.
func (n *Network) Send(src, dst int, data []byte) error {
	if src < 0 || src >= n.Nodes() || dst < 0 || dst >= n.Nodes() {
		return fmt.Errorf("alert: node id out of range [0, %d)", n.Nodes())
	}
	if src == dst {
		return fmt.Errorf("alert: source and destination are the same node")
	}
	_, err := n.w.Proto.Send(medium.NodeID(src), medium.NodeID(dst), data)
	return err
}

// OnRequest sets the destination-side request handler: when a request
// reaches a destination, the handler's return value is routed back
// anonymously to the source zone (ALERT only; Section 2.2's
// request/response interaction).
func (n *Network) OnRequest(fn func(dst int, query []byte) []byte) {
	if n.w.Alert == nil || fn == nil {
		return
	}
	n.w.Alert.OnRequest = func(dst medium.NodeID, query []byte) []byte {
		return fn(int(dst), query)
	}
}

// Request sends a query from src to dst and invokes onReply at the source
// when the destination's response arrives (requires OnRequest to be set).
func (n *Network) Request(src, dst int, query []byte, onReply func(data []byte, at float64)) error {
	if src < 0 || src >= n.Nodes() || dst < 0 || dst >= n.Nodes() {
		return fmt.Errorf("alert: node id out of range [0, %d)", n.Nodes())
	}
	if src == dst {
		return fmt.Errorf("alert: source and destination are the same node")
	}
	if n.w.Alert == nil {
		return fmt.Errorf("alert: request/reply requires the ALERT protocol")
	}
	_, err := n.w.Alert.Request(medium.NodeID(src), medium.NodeID(dst), query, onReply)
	return err
}

// RunFor advances the simulation by d simulated seconds.
func (n *Network) RunFor(d float64) { n.w.Eng.RunUntil(n.w.Eng.Now() + d) }

// RunUntil advances the simulation to absolute time t.
func (n *Network) RunUntil(t float64) { n.w.Eng.RunUntil(t) }

// Position returns a node's current true position in meters.
func (n *Network) Position(id int) (x, y float64) {
	p := n.w.Med.PositionNow(medium.NodeID(id))
	return p.X, p.Y
}

// DestZone returns the corners (minX, minY, maxX, maxY) of the destination
// zone Z_D that ALERT would compute for a node right now.
func (n *Network) DestZone(id int) (minX, minY, maxX, maxY float64) {
	z := experiment.ZoneOf(n.w, medium.NodeID(id))
	return z.Min.X, z.Min.Y, z.Max.X, z.Max.Y
}

// Metrics returns the run's metrics so far.
func (n *Network) Metrics() Result {
	return resultFrom(n.w.Collect(nil))
}

// RouteMap renders an ASCII map (w x h characters) of the most recent
// delivered packet's route: '.' nodes, numbered relays in hop order, 'S'
// and 'D' endpoints, '#' the destination-zone outline. Returns "" when
// nothing has been delivered yet, and an error for a degenerate canvas
// (dimensions below 2x2).
func (n *Network) RouteMap(w, h int) (string, error) {
	recs := n.w.Proto.Collector().Records()
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if !r.Delivered {
			continue
		}
		positions := make([]geo.Point, n.Nodes())
		for id := range positions {
			positions[id] = n.w.Med.PositionNow(medium.NodeID(id))
		}
		zd := experiment.ZoneOf(n.w, r.Dst)
		return trace.RouteMap(n.w.Net.Field(), positions, r.Path, r.Src, r.Dst, zd, w, h)
	}
	return "", nil
}

// RouteSVG renders the most recent delivered packet's route as an SVG
// document (see RouteMap for the ASCII form). Returns "" before the first
// delivery.
func (n *Network) RouteSVG(width int, title string) string {
	recs := n.w.Proto.Collector().Records()
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if !r.Delivered {
			continue
		}
		positions := make([]geo.Point, n.Nodes())
		for id := range positions {
			positions[id] = n.w.Med.PositionNow(medium.NodeID(id))
		}
		zd := experiment.ZoneOf(n.w, r.Dst)
		return trace.RouteSVG(n.w.Net.Field(), positions, r.Path, r.Src, r.Dst,
			zd, trace.SVGOptions{Width: width, Title: title})
	}
	return ""
}

// PartitionDepth returns ALERT's H for this network (0 for baselines).
func (n *Network) PartitionDepth() int {
	if n.w.Alert == nil {
		return 0
	}
	return n.w.Alert.H()
}

// ALERTConfig exposes the full protocol configuration for advanced use.
func ALERTConfig() core.Config { return core.DefaultConfig() }

package alert_test

import (
	"fmt"

	alert "alertmanet"
)

// ExampleDefaultConfig shows the paper's evaluation parameters and the
// derived partition depth H = log2(N/k).
func ExampleDefaultConfig() {
	cfg := alert.DefaultConfig()
	net, err := alert.NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", net.Nodes())
	fmt.Println("partitions H:", net.PartitionDepth())
	minX, minY, maxX, maxY := net.DestZone(0)
	fmt.Printf("Z_D area: %.0f m^2\n", (maxX-minX)*(maxY-minY))
	// Output:
	// nodes: 200
	// partitions H: 5
	// Z_D area: 31250 m^2
}

// ExampleRunIntersectionAttack demonstrates Section 3.3: the two-step
// multicast removes the destination from the attacker's intersection.
func ExampleRunIntersectionAttack() {
	plain := alert.RunIntersectionAttack(1, 25, false)
	guarded := alert.RunIntersectionAttack(1, 25, true)
	fmt.Println("plain broadcast, D still a candidate:", plain.DestinationCandidate)
	fmt.Println("two-step multicast, D still a candidate:", guarded.DestinationCandidate)
	// Output:
	// plain broadcast, D still a candidate: true
	// two-step multicast, D still a candidate: false
}

// ExampleExpectedRandomForwarders evaluates Equation (10) for the paper's
// default H = 5.
func ExampleExpectedRandomForwarders() {
	fmt.Printf("%.4f\n", alert.ExpectedRandomForwarders(5))
	// Output:
	// 1.5312
}

package alert

import (
	"bytes"
	"strings"
	"testing"
)

// mustRun and mustNet keep the facade tests terse now that Run and
// NewNetwork return errors.
func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRunDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30
	res := mustRun(t, cfg)
	if res.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
	if res.DeliveryRate < 0.9 {
		t.Fatalf("delivery = %v", res.DeliveryRate)
	}
	if res.MeanLatencySeconds <= 0 {
		t.Fatal("no latency measured")
	}
	if res.MeanRandomForwarders <= 0 {
		t.Fatal("ALERT used no random forwarders")
	}
}

func TestRunBaselines(t *testing.T) {
	for _, p := range []Protocol{GPSR, ALARM, AO2P} {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.Duration = 20
		res := mustRun(t, cfg)
		if res.DeliveryRate < 0.9 {
			t.Fatalf("%s delivery = %v", p, res.DeliveryRate)
		}
		if res.MeanRandomForwarders != 0 {
			t.Fatalf("%s reported random forwarders", p)
		}
	}
}

func TestRunSeedsFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 15
	agg, err := RunSeeds(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.DeliveryRate.N != 2 {
		t.Fatalf("N = %d", agg.DeliveryRate.N)
	}
	if agg.DeliveryRate.Mean <= 0 {
		t.Fatal("no delivery")
	}
	if agg.MeanLatencySeconds.CI95 < 0 || agg.HopsPerPacket.StdDev < 0 {
		t.Fatal("spread stats invalid")
	}
}

func TestNetworkInteractive(t *testing.T) {
	cfg := DefaultConfig()
	net := mustNet(t, cfg)
	if net.Nodes() != 200 {
		t.Fatalf("nodes = %d", net.Nodes())
	}
	if net.PartitionDepth() != 5 {
		t.Fatalf("H = %d", net.PartitionDepth())
	}
	var got Delivery
	net.OnDeliver(func(d Delivery) { got = d })
	// Find a far pair for a meaningful route.
	src, dst := 0, 0
	sx, sy := net.Position(0)
	for i := 1; i < net.Nodes(); i++ {
		x, y := net.Position(i)
		if (x-sx)*(x-sx)+(y-sy)*(y-sy) > 500*500 {
			dst = i
			break
		}
	}
	if dst == 0 {
		t.Skip("no far node")
	}
	if err := net.Send(src, dst, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	net.RunFor(10)
	if got.Data == nil {
		t.Skip("undeliverable placement")
	}
	if !bytes.Equal(got.Data, []byte("ping")) || got.Src != src || got.Dst != dst {
		t.Fatalf("delivery = %+v", got)
	}
	if got.At <= 0 || got.At > net.Now() {
		t.Fatalf("delivery time %v outside run window", got.At)
	}
	m := net.Metrics()
	if m.PacketsSent != 1 || m.DeliveryRate != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestNetworkSendValidation(t *testing.T) {
	net := mustNet(t, DefaultConfig())
	if err := net.Send(-1, 5, nil); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := net.Send(0, 9999, nil); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if err := net.Send(3, 3, nil); err == nil {
		t.Fatal("self-send accepted")
	}
}

func TestNetworkDestZone(t *testing.T) {
	net := mustNet(t, DefaultConfig())
	minX, minY, maxX, maxY := net.DestZone(7)
	if maxX <= minX || maxY <= minY {
		t.Fatal("degenerate zone")
	}
	x, y := net.Position(7)
	if x < minX || x > maxX || y < minY || y > maxY {
		t.Fatal("node outside its own destination zone")
	}
	// Zone area is field/2^H.
	area := (maxX - minX) * (maxY - minY)
	want := 1000.0 * 1000.0 / 32
	if area != want {
		t.Fatalf("zone area %v, want %v", area, want)
	}
}

func TestAnalysisFacade(t *testing.T) {
	if ExpectedRandomForwarders(6) <= ExpectedRandomForwarders(3) {
		t.Fatal("E[RFs] not increasing")
	}
	if PossibleParticipatingNodes(200, 5, 1000) <= PossibleParticipatingNodes(100, 5, 1000) {
		t.Fatal("participants not increasing in N")
	}
	if RemainingNodes(20, 200, 5, 1000, 2) >= RemainingNodes(0, 200, 5, 1000, 2) {
		t.Fatal("remaining nodes should decay")
	}
	if RequiredDensity(5, 10, 5, 1000, 8) <= RequiredDensity(5, 10, 5, 1000, 2) {
		t.Fatal("required density should grow with speed")
	}
}

func TestAttackFacades(t *testing.T) {
	r := RunIntersectionAttack(1, 10, false)
	if r.Waves == 0 {
		t.Fatal("attack observed nothing")
	}
	set, eta := SourceAnonymitySet(1, true)
	if set <= 1 || eta == 0 {
		t.Fatalf("anonymity set %d (eta %d)", set, eta)
	}
	if s := TimingAttackScore(1, GPSR, 10); s <= 0 {
		t.Fatalf("timing score = %v", s)
	}
	if p := InterceptionProbability(1, GPSR, 10, 3); p <= 0 {
		t.Fatalf("interception = %v", p)
	}
}

func TestALERTConfigExposed(t *testing.T) {
	cfg := ALERTConfig()
	if cfg.K != 6 || cfg.PacketSize != 512 {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestGroupMobilityConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mobility = GroupMobility
	cfg.Groups = 5
	cfg.GroupRange = 200
	cfg.Duration = 15
	res := mustRun(t, cfg)
	if res.PacketsSent == 0 {
		t.Fatal("group mobility run sent nothing")
	}
}

func TestRouteMap(t *testing.T) {
	net := mustNet(t, DefaultConfig())
	if m, err := net.RouteMap(60, 30); err != nil || m != "" {
		t.Fatalf("route map before any delivery: %q, %v", m, err)
	}
	// Deliver something.
	src, dst := 0, 0
	sx, sy := net.Position(0)
	for i := 1; i < net.Nodes(); i++ {
		x, y := net.Position(i)
		if (x-sx)*(x-sx)+(y-sy)*(y-sy) > 500*500 {
			dst = i
			break
		}
	}
	if dst == 0 {
		t.Skip("no far node")
	}
	_ = net.Send(src, dst, []byte("x"))
	net.RunFor(10)
	m, err := net.RouteMap(60, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m == "" {
		t.Skip("undeliverable placement")
	}
	for _, want := range []string{"S", "D", "#"} {
		if !strings.Contains(m, want) {
			t.Fatalf("route map missing %q:\n%s", want, m)
		}
	}
}

func TestNetworkRequestReply(t *testing.T) {
	net := mustNet(t, DefaultConfig())
	net.OnRequest(func(dst int, query []byte) []byte {
		return append([]byte("ack:"), query...)
	})
	src, dst := 0, 0
	sx, sy := net.Position(0)
	for i := 1; i < net.Nodes(); i++ {
		x, y := net.Position(i)
		if (x-sx)*(x-sx)+(y-sy)*(y-sy) > 500*500 {
			dst = i
			break
		}
	}
	if dst == 0 {
		t.Skip("no far node")
	}
	var reply []byte
	if err := net.Request(src, dst, []byte("sitrep"), func(data []byte, _ float64) {
		reply = data
	}); err != nil {
		t.Fatal(err)
	}
	net.RunFor(20)
	if reply == nil {
		t.Skip("round trip failed in this placement")
	}
	if string(reply) != "ack:sitrep" {
		t.Fatalf("reply = %q", reply)
	}
	// Validation errors.
	if err := net.Request(-1, 2, nil, nil); err == nil {
		t.Fatal("bad src accepted")
	}
	if err := net.Request(2, 2, nil, nil); err == nil {
		t.Fatal("self request accepted")
	}
	gpsrNet := mustNet(t, func() Config { c := DefaultConfig(); c.Protocol = GPSR; return c }())
	if err := gpsrNet.Request(0, 1, nil, nil); err == nil {
		t.Fatal("request on GPSR accepted")
	}
}

func TestPresetsFacade(t *testing.T) {
	ps := ListPresets()
	if len(ps) < 6 {
		t.Fatalf("presets = %d", len(ps))
	}
	r, err := RunPreset("sparse", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PacketsSent == 0 {
		t.Fatal("preset run sent nothing")
	}
	if _, err := RunPreset("bogus", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestWorkloadFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Traffic = PoissonLoad
	cfg.Duration = 20
	r := mustRun(t, cfg)
	if r.PacketsSent == 0 {
		t.Fatal("poisson workload sent nothing")
	}
}

func TestZAPFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = ZAP
	cfg.Duration = 20
	r := mustRun(t, cfg)
	if r.DeliveryRate < 0.85 {
		t.Fatalf("ZAP delivery = %v", r.DeliveryRate)
	}
}

func TestCoverageAndTriangulationFacades(t *testing.T) {
	if ZoneCoveragePercent(3, 6, 1) != 1 {
		t.Fatal("pc=1 coverage wrong")
	}
	plain := SourceLocationError(1, false)
	covered := SourceLocationError(1, true)
	if plain < 0 || covered < 0 {
		t.Fatal("no observation")
	}
	if covered <= plain {
		t.Fatal("cover traffic should degrade the estimate")
	}
}

func TestRouteSVGFacade(t *testing.T) {
	net := mustNet(t, DefaultConfig())
	if net.RouteSVG(300, "t") != "" {
		t.Fatal("svg before delivery should be empty")
	}
	dst := 0
	sx, sy := net.Position(0)
	for i := 1; i < net.Nodes(); i++ {
		x, y := net.Position(i)
		if (x-sx)*(x-sx)+(y-sy)*(y-sy) > 500*500 {
			dst = i
			break
		}
	}
	if dst == 0 {
		t.Skip("no far node")
	}
	_ = net.Send(0, dst, []byte("x"))
	net.RunFor(10)
	svg := net.RouteSVG(300, "demo route")
	if svg == "" {
		t.Skip("undeliverable placement")
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "demo route") {
		t.Fatal("svg malformed")
	}
}

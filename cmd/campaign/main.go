// Command campaign runs the paper's evaluation as one declarative sweep: it
// expands the selected figures into their full cell grids, executes them
// across a worker pool, and streams every result to an append-only store
// keyed by cell content hash. Killing a run loses nothing — `resume` (or
// simply re-running) re-executes only the missing cells — and a shared
// -cache-dir makes cells free across campaign directories too.
//
//	campaign run -dir out/figures-campaign -seeds 5 all
//	campaign resume -dir out/figures-campaign
//	campaign status -dir out/figures-campaign
//	campaign export -dir out/figures-campaign > results.jsonl
//
// Figure names are the registry's: fig10a ... fig17 and energy; `all`
// (default) selects every one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"alertmanet/internal/campaign"
	"alertmanet/internal/experiment"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run", "resume":
		// resume is run: the store already holds the finished prefix, so a
		// re-run executes only what is missing.
		err = cmdRun(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  campaign run    -dir <campaign-dir> [flags] [figures...]   execute (or continue) a campaign
  campaign resume -dir <campaign-dir> [flags] [figures...]   alias of run
  campaign status -dir <campaign-dir>                        print progress and provenance
  campaign export -dir <campaign-dir> [-o file]              dump the result store as JSONL

run flags:
  -seeds N      independent runs per data point (default 5; paper: 30)
  -jobs N       parallel simulation workers (0 = GOMAXPROCS)
  -retries N    execution attempts per cell (default 2)
  -max-events N per-cell event budget, 0 = unlimited (runaway guard)
  -cache-dir D  content-addressed cell cache shared across campaigns
  -o DIR        also render each figure to DIR/<name>.{txt,csv}
  -format F     rendered figure format: text or csv
  -quiet        suppress per-cell progress lines
`)
}

// selectFigures resolves figure-name arguments against the registry.
func selectFigures(args []string) ([]experiment.Figure, error) {
	all := experiment.Figures()
	if len(args) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			return all, nil
		}
		if _, ok := experiment.FindFigure(a); !ok {
			return nil, fmt.Errorf("unknown figure %q", a)
		}
		want[a] = true
	}
	var out []experiment.Figure
	for _, f := range all {
		if want[f.Name] {
			out = append(out, f)
		}
	}
	return out, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (result store + manifest)")
	seeds := fs.Int("seeds", 5, "independent runs per data point (paper: 30)")
	jobs := fs.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 2, "execution attempts per cell")
	maxEvents := fs.Uint64("max-events", 0, "per-cell event budget (0 = unlimited)")
	shards := fs.Int("shards", 0, "event-engine shards per cell, power of two (0 = unsharded)")
	cacheDir := fs.String("cache-dir", "", "content-addressed cell cache shared across campaigns")
	outDir := fs.String("o", "", "also render each figure to <dir>/<name>.{txt,csv}")
	format := fs.String("format", "text", "rendered figure format: text or csv")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("run needs -dir")
	}
	figures, err := selectFigures(fs.Args())
	if err != nil {
		return err
	}

	store, err := campaign.OpenStore(*dir)
	if err != nil {
		return err
	}
	defer store.Close()
	eng := &campaign.Engine{
		Name:      "figures",
		Jobs:      *jobs,
		Retries:   *retries,
		MaxEvents: *maxEvents,
		Shards:    *shards,
		Store:     store,
	}
	if *cacheDir != "" {
		cache, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		eng.Cache = cache
	}
	if !*quiet {
		eng.OnCell = func(ev campaign.CellEvent) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] FAIL  %s: %v\n", ev.Done, ev.Total, ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-5s %s (%.2fs)\n", ev.Done, ev.Total, ev.Source, ev.Label, ev.Seconds)
		}
	}

	// A killed run (SIGINT/SIGTERM) stops scheduling, finishes in-flight
	// cells, stores the completed prefix, and exits nonzero; resume picks
	// up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng.WithContext(ctx)

	// Announce the planned size: the union of every selected figure's cell
	// grid, deduplicated by content key (adaptive figures plan zero cells
	// and add theirs at render time).
	distinct := map[string]bool{}
	for _, f := range figures {
		plan := f.Plan(*seeds)
		for _, sc := range plan.Runs {
			if eng.MaxEvents != 0 && sc.MaxEvents == 0 {
				sc.MaxEvents = eng.MaxEvents
			}
			if eng.Shards != 0 && sc.Shards == 0 {
				sc.Shards = eng.Shards
			}
			distinct[sc.Hash()] = true
		}
		for _, spec := range plan.Remaining {
			distinct[spec.Hash()] = true
		}
	}
	eng.Expect(len(distinct))
	fmt.Fprintf(os.Stderr, "campaign: %d planned cells across %d figures (%d already stored)\n",
		len(distinct), len(figures), store.Len())

	baseRender := experiment.RenderSeries
	ext := ".txt"
	if *format == "csv" {
		baseRender = experiment.RenderCSV
		ext = ".csv"
	}
	for _, f := range figures {
		// Execute the figure's planned grid, then render through the same
		// engine — the render's cell requests all memo-hit.
		plan := f.Plan(*seeds)
		if len(plan.Runs) > 0 {
			if _, err := eng.RunBatch(plan.Runs); err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		if len(plan.Remaining) > 0 {
			if _, err := eng.RemainingBatch(plan.Remaining); err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		series, err := f.Render(eng, *seeds)
		if err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, f.Name+ext)
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			baseRender(out, f.Title, series)
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		} else {
			baseRender(os.Stdout, f.Title, series)
			fmt.Println()
		}
	}
	st := eng.Snapshot()
	fmt.Fprintf(os.Stderr, "campaign: %d cells resolved — %d executed, %d store, %d cache, %d memo, %d failed\n",
		st.Cells, st.Executed, st.StoreHits, st.CacheHits, st.MemoHits, st.Failed)
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("status needs -dir")
	}
	m, err := campaign.ReadManifest(*dir)
	if err != nil {
		return err
	}
	store, err := campaign.LoadStore(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("campaign   %s\n", m.Name)
	fmt.Printf("store      %s (%d records)\n", *dir, store.Len())
	fmt.Printf("progress   %d/%d cells\n", m.Done, m.Cells)
	fmt.Printf("sources    %d executed, %d store, %d cache, %d memo\n",
		m.Executed, m.StoreHits, m.CacheHits, m.MemoHits)
	fmt.Printf("hash       %s\n", m.CampaignHash)
	fmt.Printf("toolchain  %s\n", m.GoVersion)
	fmt.Printf("wall       %.1fs\n", m.WallSeconds)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("campaign export", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory")
	outPath := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("export needs -dir")
	}
	store, err := campaign.LoadStore(*dir)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	for _, rec := range store.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

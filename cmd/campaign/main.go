// Command campaign runs the paper's evaluation as one declarative sweep: it
// expands the selected figures into their full cell grids, executes them
// across a worker pool, and streams every result to an append-only store
// keyed by cell content hash. Killing a run loses nothing — `resume` (or
// simply re-running) re-executes only the missing cells — and a shared
// -cache-dir makes cells free across campaign directories too.
//
//	campaign run -dir out/figures-campaign -seeds 5 all
//	campaign resume -dir out/figures-campaign
//	campaign status -dir out/figures-campaign
//	campaign export -dir out/figures-campaign > results.jsonl
//
// The same sweep distributes across processes — and machines — without
// changing its output byte: `serve` drives the campaign while leasing
// unresolved cells over HTTP, and any number of `work` processes claim,
// execute, and submit them. Cells are content-addressed and simulations
// deterministic, so the distributed results.jsonl is byte-identical to a
// single-process run's.
//
//	campaign serve -dir out/figures-campaign -addr :7077 -seeds 5 all
//	campaign work  -server http://host:7077        # on each worker machine
//	campaign status -server http://host:7077
//
// Figure names are the registry's: fig10a ... fig17 and energy; `all`
// (default) selects every one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"alertmanet/internal/campaign"
	"alertmanet/internal/campaign/server"
	"alertmanet/internal/experiment"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := dispatch(os.Args[1], os.Args[2:]); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

// dispatch routes one subcommand; tests call it directly.
func dispatch(cmd string, args []string) error {
	switch cmd {
	case "run", "resume":
		// resume is run: the store already holds the finished prefix, so a
		// re-run executes only what is missing.
		return cmdRun(args)
	case "serve":
		return cmdServe(args)
	case "work":
		return cmdWork(args)
	case "status":
		return cmdStatus(args)
	case "export":
		return cmdExport(args)
	case "-h", "-help", "--help", "help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", cmd)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  campaign run    -dir <campaign-dir> [flags] [figures...]   execute (or continue) a campaign
  campaign resume -dir <campaign-dir> [flags] [figures...]   alias of run
  campaign serve  -dir <campaign-dir> [flags] [figures...]   drive a campaign, leasing cells to workers over HTTP
  campaign work   -server <url> [flags]                      claim and execute cells from a campaign server
  campaign status -dir <campaign-dir> | -server <url>        print progress and provenance
  campaign export -dir <campaign-dir> | -server <url> [-o f] dump the result store as JSONL

run flags:
  -seeds N      independent runs per data point (default 5; paper: 30)
  -jobs N       parallel simulation workers (0 = GOMAXPROCS)
  -retries N    execution attempts per cell (default 2)
  -max-events N per-cell event budget, 0 = unlimited (runaway guard)
  -shards N     event-engine shards per cell, power of two (0 = unsharded)
  -cache-dir D  content-addressed cell cache shared across campaigns
  -o DIR        also render each figure to DIR/<name>.{txt,csv}
  -format F     rendered figure format: text or csv
  -quiet        suppress per-cell progress lines

serve flags: the run flags, plus
  -addr A           listen address (default 127.0.0.1:0)
  -addr-file F      write the bound address to F once listening
  -lease D          how long a claimed cell stays assigned before another
                    worker may reclaim it (default 30s)
  -local-workers N  also execute cells in-process alongside remote workers

work flags:
  -server URL   campaign server to claim from
  -name NAME    worker name in server-side leases (default host-pid)
  -jobs N       parallel cell executors (default 1)
  -batch N      cells per claim (default jobs)
  -retries N    execution attempts per cell (default 2)
  -quiet        suppress per-cell progress lines
`)
}

// selectFigures resolves figure-name arguments against the registry.
func selectFigures(args []string) ([]experiment.Figure, error) {
	all := experiment.Figures()
	if len(args) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			return all, nil
		}
		if _, ok := experiment.FindFigure(a); !ok {
			return nil, fmt.Errorf("unknown figure %q", a)
		}
		want[a] = true
	}
	var out []experiment.Figure
	for _, f := range all {
		if want[f.Name] {
			out = append(out, f)
		}
	}
	return out, nil
}

// engineFlags are the engine-shaping flags run and serve share.
type engineFlags struct {
	dir, cacheDir  *string
	seeds, retries *int
	jobs, shards   *int
	maxEvents      *uint64
	outDir, format *string
	quiet          *bool
}

func addEngineFlags(fs *flag.FlagSet) engineFlags {
	return engineFlags{
		dir:       fs.String("dir", "", "campaign directory (result store + manifest)"),
		seeds:     fs.Int("seeds", 5, "independent runs per data point (paper: 30)"),
		jobs:      fs.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)"),
		retries:   fs.Int("retries", 2, "execution attempts per cell"),
		maxEvents: fs.Uint64("max-events", 0, "per-cell event budget (0 = unlimited)"),
		shards:    fs.Int("shards", 0, "event-engine shards per cell, power of two (0 = unsharded)"),
		cacheDir:  fs.String("cache-dir", "", "content-addressed cell cache shared across campaigns"),
		outDir:    fs.String("o", "", "also render each figure to <dir>/<name>.{txt,csv}"),
		format:    fs.String("format", "text", "rendered figure format: text or csv"),
		quiet:     fs.Bool("quiet", false, "suppress per-cell progress lines"),
	}
}

// buildEngine opens the store and assembles the engine the flags describe.
// The caller owns closing the returned store.
func (ef engineFlags) buildEngine() (*campaign.Engine, *campaign.Store, error) {
	if *ef.dir == "" {
		return nil, nil, fmt.Errorf("need -dir")
	}
	store, err := campaign.OpenStore(*ef.dir)
	if err != nil {
		return nil, nil, err
	}
	eng := &campaign.Engine{
		Name:      "figures",
		Jobs:      *ef.jobs,
		Retries:   *ef.retries,
		MaxEvents: *ef.maxEvents,
		Shards:    *ef.shards,
		Store:     store,
	}
	if *ef.cacheDir != "" {
		cache, err := campaign.OpenCache(*ef.cacheDir)
		if err != nil {
			store.Close()
			return nil, nil, err
		}
		eng.Cache = cache
	}
	if !*ef.quiet {
		eng.OnCell = func(ev campaign.CellEvent) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] FAIL  %s: %v\n", ev.Done, ev.Total, ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-5s %s (%.2fs)\n", ev.Done, ev.Total, ev.Source, ev.Label, ev.Seconds)
		}
	}
	return eng, store, nil
}

// driveFigures executes and renders the selected figures through the engine —
// the campaign's "driver" role, identical whether the engine resolves cells
// in-process (run) or through leased remote workers (serve). Identical is the
// point: the store's byte layout depends only on this drive order.
func driveFigures(eng *campaign.Engine, store *campaign.Store, figures []experiment.Figure, ef engineFlags) error {
	// Announce the planned size: the union of every selected figure's cell
	// grid, deduplicated by content key (adaptive figures plan zero cells
	// and add theirs at render time).
	distinct := map[string]bool{}
	for _, f := range figures {
		plan := f.Plan(*ef.seeds)
		for _, sc := range plan.Runs {
			if eng.MaxEvents != 0 && sc.MaxEvents == 0 {
				sc.MaxEvents = eng.MaxEvents
			}
			if eng.Shards != 0 && sc.Shards == 0 {
				sc.Shards = eng.Shards
			}
			distinct[sc.Hash()] = true
		}
		for _, spec := range plan.Remaining {
			distinct[spec.Hash()] = true
		}
	}
	eng.Expect(len(distinct))
	fmt.Fprintf(os.Stderr, "campaign: %d planned cells across %d figures (%d already stored)\n",
		len(distinct), len(figures), store.Len())

	baseRender := experiment.RenderSeries
	ext := ".txt"
	if *ef.format == "csv" {
		baseRender = experiment.RenderCSV
		ext = ".csv"
	}
	for _, f := range figures {
		// Execute the figure's planned grid, then render through the same
		// engine — the render's cell requests all memo-hit.
		plan := f.Plan(*ef.seeds)
		if len(plan.Runs) > 0 {
			if _, err := eng.RunBatch(plan.Runs); err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		if len(plan.Remaining) > 0 {
			if _, err := eng.RemainingBatch(plan.Remaining); err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		series, err := f.Render(eng, *ef.seeds)
		if err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		if *ef.outDir != "" {
			if err := os.MkdirAll(*ef.outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*ef.outDir, f.Name+ext)
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			baseRender(out, f.Title, series)
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		} else {
			baseRender(os.Stdout, f.Title, series)
			fmt.Println()
		}
	}
	st := eng.Snapshot()
	fmt.Fprintf(os.Stderr, "campaign: %d cells resolved — %d executed, %d store, %d cache, %d memo, %d failed\n",
		st.Cells, st.Executed, st.StoreHits, st.CacheHits, st.MemoHits, st.Failed)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	ef := addEngineFlags(fs)
	fs.Parse(args)
	figures, err := selectFigures(fs.Args())
	if err != nil {
		return err
	}
	eng, store, err := ef.buildEngine()
	if err != nil {
		return err
	}
	defer store.Close()

	// A killed run (SIGINT/SIGTERM) stops scheduling, finishes in-flight
	// cells, stores the completed prefix, and exits nonzero; resume picks
	// up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng.WithContext(ctx)
	return driveFigures(eng, store, figures, ef)
}

// serveReady, when set (by tests), observes the server's bound address just
// before the figure drive starts.
var serveReady func(addr string)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("campaign serve", flag.ExitOnError)
	ef := addEngineFlags(fs)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	lease := fs.Duration("lease", server.DefaultLease, "claimed-cell lease before another worker may reclaim it")
	localWorkers := fs.Int("local-workers", 0, "in-process workers executing alongside remote ones")
	fs.Parse(args)
	figures, err := selectFigures(fs.Args())
	if err != nil {
		return err
	}
	eng, store, err := ef.buildEngine()
	if err != nil {
		return err
	}
	defer store.Close()

	q := &server.Queue{Lease: *lease}
	if !*ef.quiet {
		q.OnEvent = func(ev server.Event) {
			switch ev.Kind {
			case server.EventClaim:
				fmt.Fprintf(os.Stderr, "serve: %s claimed %d cells\n", ev.Worker, len(ev.Keys))
			case server.EventExpire:
				fmt.Fprintf(os.Stderr, "serve: lease expired on %.12s, reclaiming\n", ev.Key)
			case server.EventFail:
				fmt.Fprintf(os.Stderr, "serve: %s failed %.12s\n", ev.Worker, ev.Key)
			}
		}
	}
	eng.Exec = q

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Write-then-rename so a watcher never reads a half-written file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: serving on http://%s\n", bound)
	hs := &http.Server{Handler: (&server.Server{Queue: q, Store: store, Name: "figures"}).Handler()}
	//lint:allowsharedstate HTTP accept loop: the listener is owned by this goroutine until Shutdown; campaign state is reached only through the Queue's own lock
	go hs.Serve(ln)

	// SIGINT/SIGTERM stops scheduling; the completed prefix is already on
	// disk, the manifest is current, and resume-serving re-leases only the
	// missing suffix.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng.WithContext(ctx)

	var wg sync.WaitGroup
	workerErrs := make([]error, *localWorkers)
	for i := 0; i < *localWorkers; i++ {
		wg.Add(1)
		//lint:allowsharedstate in-process campaign workers: they interact with the run only through the same HTTP protocol remote workers use
		go func(i int) {
			defer wg.Done()
			w := &server.Worker{
				Name:    fmt.Sprintf("local-%d", i+1),
				BaseURL: "http://" + bound,
				Retries: *ef.retries,
			}
			workerErrs[i] = w.Run(ctx)
		}(i)
	}

	if serveReady != nil {
		serveReady(bound)
	}
	derr := driveFigures(eng, store, figures, ef)
	// Finished or killed, tell workers to stop claiming, then drain the
	// transport before the deferred store close. Remote workers learn the
	// campaign is done only from their next claim, so keep answering until
	// every worker that ever claimed has been told — or the grace period
	// expires (a SIGKILLed worker never acks).
	q.Finish()
	wg.Wait()
	for drainDeadline := time.Now().Add(5 * time.Second); !q.Drained() && time.Now().Before(drainDeadline); {
		time.Sleep(10 * time.Millisecond)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && derr == nil {
		derr = err
	}
	if derr != nil {
		return derr
	}
	for i, werr := range workerErrs {
		if werr != nil && ctx.Err() == nil {
			return fmt.Errorf("local worker %d: %w", i+1, werr)
		}
	}
	return nil
}

func cmdWork(args []string) error {
	fs := flag.NewFlagSet("campaign work", flag.ExitOnError)
	srvURL := fs.String("server", "", "campaign server to claim from")
	name := fs.String("name", "", "worker name in server-side leases (default host-pid)")
	jobs := fs.Int("jobs", 1, "parallel cell executors")
	batch := fs.Int("batch", 0, "cells per claim (default jobs)")
	retries := fs.Int("retries", 2, "execution attempts per cell")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines")
	fs.Parse(args)
	if *srvURL == "" {
		return fmt.Errorf("work needs -server")
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &server.Worker{
		Name:    *name,
		BaseURL: *srvURL,
		Jobs:    *jobs,
		Batch:   *batch,
		Retries: *retries,
	}
	if !*quiet {
		w.OnCell = func(ev server.WorkerEvent) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "work: FAIL %s: %v\n", ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "work: %-9s %s (%.2fs)\n", ev.Status, ev.Label, ev.Seconds)
		}
	}
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "work: campaign complete, %s exiting\n", *name)
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory")
	srvURL := fs.String("server", "", "query a live campaign server instead of a directory")
	fs.Parse(args)
	if *srvURL != "" {
		resp, err := http.Get(*srvURL + server.PathStatus)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server status: %s", resp.Status)
		}
		var st server.StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return err
		}
		fmt.Printf("campaign   %s (live)\n", st.Name)
		fmt.Printf("stored     %d records\n", st.Stored)
		fmt.Printf("queue      %d pending, %d leased, done=%v\n", st.Pending, st.Leased, st.Done)
		fmt.Printf("traffic    %d claims, %d leased, %d completed, %d duplicates, %d expired, %d failed\n",
			st.Stats.Claims, st.Stats.Leased, st.Stats.Completed, st.Stats.Duplicates, st.Stats.Expired, st.Stats.Failed)
		return nil
	}
	if *dir == "" {
		return fmt.Errorf("status needs -dir or -server")
	}
	m, err := campaign.ReadManifest(*dir)
	if err != nil {
		return err
	}
	store, err := campaign.LoadStore(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("campaign   %s\n", m.Name)
	fmt.Printf("store      %s (%d records)\n", *dir, store.Len())
	fmt.Printf("progress   %d/%d cells\n", m.Done, m.Cells)
	fmt.Printf("sources    %d executed, %d store, %d cache, %d memo\n",
		m.Executed, m.StoreHits, m.CacheHits, m.MemoHits)
	fmt.Printf("hash       %s\n", m.CampaignHash)
	fmt.Printf("toolchain  %s\n", m.GoVersion)
	fmt.Printf("wall       %.1fs\n", m.WallSeconds)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("campaign export", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory")
	srvURL := fs.String("server", "", "stream from a live campaign server instead of a directory")
	outPath := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *srvURL != "" {
		resp, err := http.Get(*srvURL + server.PathExport)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server export: %s", resp.Status)
		}
		_, err = io.Copy(w, resp.Body)
		return err
	}
	if *dir == "" {
		return fmt.Errorf("export needs -dir or -server")
	}
	store, err := campaign.LoadStore(*dir)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, rec := range store.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

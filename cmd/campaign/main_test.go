// cmd/campaign tests, in three tiers: direct subcommand round trips
// (run/status/export and serve with in-process workers), a serve+work
// round trip over real HTTP inside one process, and exec-based e2e — real
// worker child processes against an in-process campaign server, one of them
// SIGKILLed mid-lease, with the final store checked byte-for-byte against a
// single-process run and the figure digests against the golden corpus.
//
// The test binary doubles as the campaign binary: when CAMPAIGN_E2E_ARGS is
// set, TestMain routes straight into dispatch() — the standard
// helper-process pattern, no separate build step.

package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"alertmanet/internal/analysis"
	"alertmanet/internal/campaign"
	"alertmanet/internal/campaign/server"
	"alertmanet/internal/experiment"
)

func TestMain(m *testing.M) {
	if raw := os.Getenv("CAMPAIGN_E2E_ARGS"); raw != "" {
		var args []string
		if err := json.Unmarshal([]byte(raw), &args); err != nil || len(args) == 0 {
			fmt.Fprintln(os.Stderr, "campaign helper: bad CAMPAIGN_E2E_ARGS:", err)
			os.Exit(2)
		}
		if err := dispatch(args[0], args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// helperCommand runs this test binary as the campaign CLI.
func helperCommand(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	enc, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CAMPAIGN_E2E_ARGS="+string(enc))
	return cmd
}

func readResults(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// cmdReference is the byte-exact single-process `run` output for the cheap
// fig12 grid every subcommand test compares against, computed once.
var (
	cmdRefOnce  sync.Once
	cmdRefBytes []byte
	cmdRefErr   error
)

func cmdReference(t *testing.T) []byte {
	t.Helper()
	cmdRefOnce.Do(func() {
		dir, err := os.MkdirTemp("", "campaign-cmd-ref")
		if err != nil {
			cmdRefErr = err
			return
		}
		defer os.RemoveAll(dir)
		if err := dispatch("run", []string{"-dir", dir, "-seeds", "1", "-quiet",
			"-o", filepath.Join(dir, "figs"), "fig12"}); err != nil {
			cmdRefErr = err
			return
		}
		cmdRefBytes, cmdRefErr = os.ReadFile(filepath.Join(dir, "results.jsonl"))
	})
	if cmdRefErr != nil {
		t.Fatalf("reference run: %v", cmdRefErr)
	}
	return cmdRefBytes
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch("frobnicate", nil); err == nil {
		t.Fatal("unknown subcommand must error")
	}
}

func TestRunStatusExport(t *testing.T) {
	ref := cmdReference(t)
	dir := t.TempDir()
	if err := dispatch("run", []string{"-dir", dir, "-seeds", "1", "-quiet",
		"-o", filepath.Join(dir, "figs"), "fig12"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := readResults(t, dir); !bytes.Equal(got, ref) {
		t.Fatal("identical run args produced different store bytes")
	}
	if err := dispatch("status", []string{"-dir", dir}); err != nil {
		t.Fatalf("status: %v", err)
	}
	out := filepath.Join(t.TempDir(), "export.jsonl")
	if err := dispatch("export", []string{"-dir", dir, "-o", out}); err != nil {
		t.Fatalf("export: %v", err)
	}
	exported, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exported, ref) {
		t.Fatal("export is not byte-identical to results.jsonl")
	}
	if err := dispatch("status", nil); err == nil {
		t.Fatal("status without -dir or -server must error")
	}
	if err := dispatch("export", nil); err == nil {
		t.Fatal("export without -dir or -server must error")
	}
}

// TestServeLocalWorkers: `serve -local-workers 2` completes a campaign with
// no remote workers at all, byte-identical to plain `run`.
func TestServeLocalWorkers(t *testing.T) {
	ref := cmdReference(t)
	dir := t.TempDir()
	err := dispatch("serve", []string{
		"-dir", dir, "-seeds", "1", "-quiet", "-local-workers", "2",
		"-o", filepath.Join(dir, "figs"), "fig12",
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if got := readResults(t, dir); !bytes.Equal(got, ref) {
		t.Fatal("serve with local workers differs from single-process run")
	}
}

// TestServeWorkRoundTrip: `serve` and two `work` subcommands in one process,
// talking over real HTTP via the serveReady hook.
func TestServeWorkRoundTrip(t *testing.T) {
	ref := cmdReference(t)
	dir := t.TempDir()
	addrCh := make(chan string, 1)
	serveReady = func(addr string) { addrCh <- addr }
	defer func() { serveReady = nil }()

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- dispatch("serve", []string{"-dir", dir, "-seeds", "1", "-quiet",
			"-o", filepath.Join(dir, "figs"), "fig12"})
	}()
	addr := <-addrCh
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = dispatch("work", []string{
				"-server", "http://" + addr, "-name", fmt.Sprintf("w%d", i+1), "-quiet",
			})
		}(i)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()
	for i, werr := range werrs {
		if werr != nil {
			t.Fatalf("work %d: %v", i+1, werr)
		}
	}
	if got := readResults(t, dir); !bytes.Equal(got, ref) {
		t.Fatal("serve+work differs from single-process run")
	}
}

// --- exec-based e2e ---

const goldenPath = "../../internal/experiment/testdata/figures_golden.json"

func seriesDigest(series []analysis.Series) string {
	h := sha256.New()
	for _, s := range series {
		fmt.Fprintf(h, "%s|%v|%v|%v\n", s.Label, s.X, s.Y, s.Err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// e2eDrive renders the golden-pinned figure subset through a runner.
func e2eDrive(r experiment.Runner) (map[string]string, error) {
	d := map[string]string{}
	s, err := experiment.Fig11(r, 3, 2)
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	d["fig11"] = seriesDigest([]analysis.Series{s})
	many, err := experiment.Fig12(r, []float64{0, 5, 10}, 2)
	if err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}
	d["fig12"] = seriesDigest(many)
	many, err = experiment.EnergySummary(r, 2)
	if err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	d["energy"] = seriesDigest(many)
	return d, nil
}

// TestExecE2EWorkerSIGKILL: a real worker child process is SIGKILLed while
// holding leases; the lease expires on the wall clock, a second child
// process reclaims and finishes, and the final store is byte-identical to a
// single-process run with digests matching the blessed golden corpus.
func TestExecE2EWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and drives the figure subset twice")
	}

	// Single-process reference for this figure subset.
	refDir := t.TempDir()
	refStore, err := campaign.OpenStore(refDir)
	if err != nil {
		t.Fatal(err)
	}
	refDigests, err := e2eDrive(&campaign.Engine{Store: refStore, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := refStore.Close(); err != nil {
		t.Fatal(err)
	}
	ref := readResults(t, refDir)

	// The distributed campaign under test.
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := &server.Queue{Lease: 500 * time.Millisecond}

	// The victim dies by SIGKILL inside its first claim — before the HTTP
	// response reaches it — so its leased cells are guaranteed to go
	// unexecuted until the lease expires. The kill hook is wired before the
	// HTTP server exists, so no handler ever races the assignment.
	var victim *exec.Cmd
	victimKilled := make(chan struct{})
	var killOnce sync.Once
	q.OnEvent = func(ev server.Event) {
		if ev.Kind == server.EventClaim && ev.Worker == "victim" {
			killOnce.Do(func() {
				if err := victim.Process.Kill(); err != nil {
					t.Errorf("kill victim: %v", err)
				}
				close(victimKilled)
			})
		}
	}
	ts := httptest.NewServer((&server.Server{Queue: q, Store: store, Name: "e2e"}).Handler())
	victim = helperCommand(t, "work", "-server", ts.URL, "-name", "victim", "-batch", "3", "-quiet")

	driverDone := make(chan error, 1)
	digestCh := make(chan map[string]string, 1)
	go func() {
		eng := &campaign.Engine{Store: store, Exec: q}
		d, err := e2eDrive(eng)
		digestCh <- d
		q.Finish()
		driverDone <- err
	}()

	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-victimKilled:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never claimed cells")
	}
	if err := victim.Wait(); err == nil {
		t.Fatal("SIGKILLed victim reported clean exit")
	}

	survivor := helperCommand(t, "work", "-server", ts.URL, "-name", "survivor", "-jobs", "2", "-quiet")
	survivor.Stderr = os.Stderr
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	if derr := <-driverDone; derr != nil {
		t.Fatalf("driver: %v", derr)
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor: %v", err)
	}

	// The status and export subcommands against the live server.
	if err := dispatch("status", []string{"-server", ts.URL}); err != nil {
		t.Fatalf("status -server: %v", err)
	}
	exportPath := filepath.Join(t.TempDir(), "export.jsonl")
	if err := dispatch("export", []string{"-server", ts.URL, "-o", exportPath}); err != nil {
		t.Fatalf("export -server: %v", err)
	}
	exported, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}

	stats, pending, leased, _ := q.Snapshot()
	ts.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	if stats.Expired == 0 {
		t.Fatalf("the victim's leases never expired: %+v", stats)
	}
	if pending != 0 || leased != 0 {
		t.Fatalf("queue not drained: pending=%d leased=%d", pending, leased)
	}
	got := readResults(t, dir)
	if !bytes.Equal(got, ref) {
		t.Fatalf("distributed store differs from single-process run (%d vs %d bytes)", len(got), len(ref))
	}
	if !bytes.Equal(exported, ref) {
		t.Fatal("export -server is not byte-identical to the reference store")
	}

	// And the figures those bytes produce are the paper's: golden digests.
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	digests := <-digestCh
	for name, want := range map[string]string{
		"fig11": golden["fig11"], "fig12": golden["fig12"], "energy": golden["energy"],
	} {
		if digests[name] != want {
			t.Errorf("digest %s: distributed %s, golden %s", name, digests[name], want)
		}
		if refDigests[name] != want {
			t.Errorf("digest %s: reference %s, golden %s", name, refDigests[name], want)
		}
	}
}

// TestExecE2EServeSIGINT: a real `serve -local-workers 1` child process is
// interrupted mid-campaign; whatever prefix it stored, a plain `run` resume
// completes it to bytes identical to a never-interrupted run.
func TestExecE2EServeSIGINT(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a server process and drives the figure subset")
	}
	ref := cmdReference(t)

	dir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	serve := helperCommand(t, "serve",
		"-dir", dir, "-seeds", "1", "-quiet", "-local-workers", "1",
		"-addr-file", addrFile, "-o", filepath.Join(dir, "figs"), "fig12")
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}

	// Watch for the first stored record, then interrupt. The fig12 grid is
	// tiny, so the child may finish the whole campaign before the signal
	// lands — exit code 0 (completed) and 1 (interrupted) are both
	// legitimate, and the prefix + resume assertions below hold either way.
	exited := make(chan error, 1)
	go func() { exited <- serve.Wait() }()
	deadline := time.Now().Add(30 * time.Second)
	running := true
	for running && time.Now().Before(deadline) {
		select {
		case err := <-exited:
			running = false
			if err != nil {
				t.Fatalf("serve exited uninterrupted with: %v", err)
			}
		default:
			addrData, err := os.ReadFile(addrFile)
			if err != nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			addr := "http://" + string(bytes.TrimSpace(addrData))
			resp, herr := http.Get(addr + server.PathStatus)
			if herr == nil {
				var st server.StatusResponse
				jerr := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if jerr == nil && st.Stored > 0 {
					// Racing a just-finished child is fine: the signal then
					// errors harmlessly and the wait below sees exit 0.
					serve.Process.Signal(os.Interrupt)
					if werr := <-exited; werr != nil {
						var exitErr *exec.ExitError
						if !errors.As(werr, &exitErr) || exitErr.ExitCode() != 1 {
							t.Fatalf("interrupted serve exit: %v", werr)
						}
					}
					running = false
				}
			}
			if running {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if running {
		t.Fatal("serve neither stored a record nor exited within 30s")
	}

	partial := readResults(t, dir)
	if !bytes.HasPrefix(ref, partial) {
		t.Fatal("interrupted serve left bytes that are not a prefix of the reference run")
	}
	// Resume single-process: the distributed prefix and the local suffix
	// must fuse into the byte-identical whole.
	if err := dispatch("run", []string{"-dir", dir, "-seeds", "1", "-quiet",
		"-o", filepath.Join(dir, "figs"), "fig12"}); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if got := readResults(t, dir); !bytes.Equal(got, ref) {
		t.Fatal("resume after interrupted serve is not byte-identical")
	}
}

// Command analysis prints the paper's Section 4 analytical curves:
//
//	analysis fig7a     possible participating nodes vs partitions (Eq. 7)
//	analysis fig7b     expected random forwarders vs partitions (Eq. 10)
//	analysis fig9a     remaining nodes vs time by density (Eq. 15)
//	analysis fig9b     remaining nodes vs time by speed (Eq. 15)
//	analysis overhead  location-service overhead ratio (Section 4.3)
//	analysis all       everything
package main

import (
	"fmt"
	"os"

	"alertmanet/internal/analysis"
	"alertmanet/internal/experiment"
)

var times = []float64{0, 5, 10, 15, 20, 25, 30, 40, 50}

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	any := false
	if which == "fig7a" || which == "all" {
		any = true
		experiment.RenderSeries(os.Stdout, "Fig. 7a (analysis): possible participating nodes vs partitions",
			analysis.Fig7aPossibleParticipants([]int{100, 200, 400}, 8, 1000))
	}
	if which == "fig7b" || which == "all" {
		any = true
		experiment.RenderSeries(os.Stdout, "Fig. 7b (analysis): expected random forwarders vs partitions",
			[]analysis.Series{analysis.Fig7bExpectedRFs(8)})
	}
	if which == "fig9a" || which == "all" {
		any = true
		experiment.RenderSeries(os.Stdout, "Fig. 9a (analysis): remaining nodes vs time (v=2 m/s, H=5)",
			analysis.Fig9aRemainingNodes([]int{100, 200, 400}, 5, 1000, 2, times))
	}
	if which == "fig9b" || which == "all" {
		any = true
		experiment.RenderSeries(os.Stdout, "Fig. 9b (analysis): remaining nodes vs time (N=200, H=5)",
			analysis.Fig9bRemainingNodes(200, 5, 1000, []float64{1, 2, 4}, times))
	}
	if which == "overhead" || which == "all" {
		any = true
		fmt.Println("== Section 4.3: location service overhead ratio ==")
		fmt.Println("   (N_L(N_L-1)f + Nf) / (NF) for N=200, N_L=15, f=0.5/s")
		for _, f := range []float64{1, 2, 5, 10, 20} {
			nl, n, fr := 15.0, 200.0, 0.5
			ratio := (nl*(nl-1)*fr + n*fr) / (n * f)
			fmt.Printf("   F = %5.1f msg/node/s  ->  ratio %.4f\n", f, ratio)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown figure %q (fig7a|fig7b|fig9a|fig9b|overhead|all)\n", which)
		os.Exit(2)
	}
}

// alertd runs one ALERT (or comparator-protocol) node as a real UDP
// daemon: the full router stack from internal/live behind a loopback-bound
// data socket, plus a tiny HTTP control plane a coordinator uses to push
// emulated topology, start flows and scrape reports. Spawn N of these,
// point cmd/alertload at their control addresses, and you have the paper's
// scenario running as actual datagrams instead of simulator events.
//
// Usage:
//
//	alertd -id 3 -n 50 -protocol alert -seed 42 -addr-file /tmp/node3.addr
//
// The addr file receives "<control-addr> <udp-addr>\n" once both sockets
// are bound (write-then-rename, so a watcher never reads a torn line). The
// process exits on SIGINT/SIGTERM or a POST to /v1/quit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/live"
	"alertmanet/internal/telemetry"
)

func parseField(s string) (geo.Rect, error) {
	var w, h float64
	if _, err := fmt.Sscanf(strings.ToLower(s), "%fx%f", &w, &h); err != nil || w <= 0 || h <= 0 {
		return geo.Rect{}, fmt.Errorf("alertd: -field wants WxH (e.g. 1000x1000), got %q", s)
	}
	return geo.Rect{Max: geo.Point{X: w, Y: h}}, nil
}

func run() error {
	fs := flag.NewFlagSet("alertd", flag.ExitOnError)
	id := fs.Int("id", -1, "node id (required; also selects this node's keys and rng stream)")
	udp := fs.String("udp", "127.0.0.1:0", "UDP data-plane bind address")
	control := fs.String("control", "127.0.0.1:0", "HTTP control-plane bind address")
	addrFile := fs.String("addr-file", "", "write '<control> <udp>' here once bound")
	protocol := fs.String("protocol", "alert", "routing protocol: alert|gpsr|alarm|ao2p|zap")
	seed := fs.Int64("seed", 1, "fleet-wide scenario seed (must match every other node)")
	n := fs.Int("n", experiment.DefaultScenario().N, "fleet size (sets the default partition depth)")
	field := fs.String("field", "1000x1000", "field dimensions WxH in metres")
	hmax := fs.Int("hmax", 0, "ALERT partition depth override (0 = derive from -n)")
	packetSize := fs.Int("packet-size", 0, "payload size in bytes (0 = scenario default)")
	loss := fs.Float64("loss", 0, "per-frame Bernoulli loss rate for the emulated medium")
	noARQ := fs.Bool("no-arq", false, "disable link-layer retransmission")
	timescale := fs.Float64("timescale", 1.0, "wall-clock seconds per emulated second")
	chargeSetup := fs.Bool("charge-setup", false, "charge asymmetric session setup on each flow's first packet")
	fixedAxis := fs.Bool("fixed-axis", false, "always split zones on the same axis (paper's simplified partition)")
	tele := fs.String("telemetry", "", "write this node's JSONL telemetry stream here")
	teleLayers := fs.String("telemetry-layers", "all", "comma-separated telemetry layers (see tlmgrep)")
	fs.Parse(os.Args[1:])

	if *id < 0 {
		return fmt.Errorf("alertd: -id is required")
	}
	rect, err := parseField(*field)
	if err != nil {
		return err
	}

	// Route all knobs through the scenario so DaemonConfigFor stays the one
	// sim-to-live parameter mapping; a fleet is consistent iff every member
	// got identical scenario-level flags.
	sc := experiment.DefaultScenario()
	sc.Protocol = experiment.ProtocolName(*protocol)
	sc.Seed = *seed
	sc.N = *n
	sc.Field = rect
	sc.LossRate = *loss
	sc.NoARQ = *noARQ
	if *hmax > 0 {
		sc.Alert.H = *hmax
	}
	if *packetSize > 0 {
		sc.PacketSize = *packetSize
	}
	sc.Alert.ChargeSessionSetup = *chargeSetup
	sc.Alert.FixedAxisPartition = *fixedAxis

	d, err := live.NewDaemon(live.DaemonConfigFor(sc, *id, *timescale), *udp)
	if err != nil {
		return err
	}
	if *tele != "" {
		mask, err := telemetry.ParseLayers(*teleLayers)
		if err != nil {
			return err
		}
		f, err := os.Create(*tele)
		if err != nil {
			return err
		}
		defer f.Close()
		d.SetTap(telemetry.New(f, mask)) // Close flushes it
	}
	d.Start()
	defer d.Close()

	cs, err := live.NewControlServer(d, *control)
	if err != nil {
		return err
	}
	defer cs.Close()

	bound := cs.Addr().String() + " " + d.UDPAddr().String()
	if *addrFile != "" {
		// Write-then-rename so a watcher never reads a half-written file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "alertd: node %d (%s) control http://%s data udp://%s\n",
		*id, *protocol, cs.Addr(), d.UDPAddr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-cs.Quit:
	case <-sigc:
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command report regenerates the full paper-vs-measured evaluation as one
// markdown document: analytical curves, every simulation figure, Table 1,
// the attack experiments, energy, and pairwise significance tests.
//
//	report -seeds 30 > report.md
//	report -seeds 5 -sections figures,attacks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"alertmanet/internal/report"
)

func main() {
	seeds := flag.Int("seeds", 5, "independent runs per data point (paper: 30)")
	sections := flag.String("sections", "", "comma-separated subset: analytical,figures,table1,attacks,energy,compare")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	cfg := report.Config{Seeds: *seeds}
	if *sections != "" {
		cfg.Sections = strings.Split(*sections, ",")
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := report.Generate(w, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

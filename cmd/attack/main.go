// Command attack runs the paper's adversary models against a live
// simulation and reports what each attacker learns:
//
//	attack intersection   recipient-set intersection on Z_D (Section 3.3)
//	attack timing         departure/arrival correlation (Section 3.2)
//	attack interception   capture rate of compromised relays (Section 3.1)
//	attack dos            delivery under packet-sinking relays (Section 3.1)
//	attack source         source triangulation vs notify-and-go (Section 2.6)
//	attack all            everything
package main

import (
	"flag"
	"fmt"
	"os"

	"alertmanet/internal/experiment"
)

func main() {
	seeds := flag.Int("seeds", 5, "independent sessions per attack")
	packets := flag.Int("packets", 25, "packets per attacked session")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func()) {
		if all || want[name] {
			fn()
			ran++
			fmt.Println()
		}
	}

	run("intersection", func() {
		fmt.Println("== intersection attack on the destination zone (Section 3.3) ==")
		for _, guard := range []bool{false, true} {
			dstIn, exposed, cand := 0, 0, 0
			for s := int64(1); s <= int64(*seeds); s++ {
				r := experiment.IntersectionAttack(s, *packets, guard)
				if r.DstCandidate {
					dstIn++
				}
				if r.Exposed {
					exposed++
				}
				cand += r.Candidates
			}
			mode := "plain Z_D broadcast"
			if guard {
				mode = "two-step m-of-k multicast"
			}
			fmt.Printf("  %-28s D candidate %d/%d, exactly identified %d/%d, mean pool %.1f\n",
				mode, dstIn, *seeds, exposed, *seeds, float64(cand)/float64(*seeds))
		}
	})
	run("timing", func() {
		fmt.Println("== timing attack: departure/arrival correlation (Section 3.2) ==")
		for _, p := range []experiment.ProtocolName{experiment.GPSR, experiment.ALERT} {
			var sum float64
			for s := int64(1); s <= int64(*seeds); s++ {
				sum += experiment.TimingAttackScore(s, p, *packets)
			}
			fmt.Printf("  %-6s correlation score %.2f (1.0 = fixed-delay signature)\n",
				p, sum/float64(*seeds))
		}
	})
	run("interception", func() {
		fmt.Println("== interception by 3 compromised relays of the first route (Section 3.1) ==")
		for _, p := range []experiment.ProtocolName{experiment.GPSR, experiment.ALERT} {
			var sum float64
			for s := int64(1); s <= int64(*seeds); s++ {
				sum += experiment.InterceptionExperiment(s, p, *packets, 3)
			}
			fmt.Printf("  %-6s %.0f%% of session packets captured\n", p, sum/float64(*seeds)*100)
		}
	})
	run("dos", func() {
		fmt.Println("== DoS: three first-route relays turned into packet sinks (Section 3.1) ==")
		for _, p := range []experiment.ProtocolName{experiment.GPSR, experiment.ALERT} {
			var before, after float64
			for s := int64(1); s <= int64(*seeds); s++ {
				r := experiment.DoSAttack(s, p, *packets, 3)
				before += r.BaselineDelivery
				after += r.UnderAttackDelivery
			}
			fmt.Printf("  %-6s delivery %.0f%% -> %.0f%% under attack\n",
				p, before/float64(*seeds)*100, after/float64(*seeds)*100)
		}
	})
	run("source", func() {
		fmt.Println("== source triangulation: first transmission in the send window (Section 2.6) ==")
		for _, cover := range []bool{false, true} {
			var sum float64
			n := 0
			for s := int64(1); s <= int64(*seeds); s++ {
				if e := experiment.SourceLocationError(s, cover); e >= 0 {
					sum += e
					n++
				}
			}
			mode := "without notify-and-go"
			if cover {
				mode = "with    notify-and-go"
			}
			if n == 0 {
				fmt.Printf("  %s: no observation\n", mode)
				continue
			}
			fmt.Printf("  %s: estimate lands %.0f m from the true source\n", mode, sum/float64(n))
		}
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown attack %v (intersection|timing|interception|dos|source|all)\n", targets)
		os.Exit(2)
	}
}

// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark smoke runs leave a
// machine-readable artifact (e.g. BENCH_pr3.json via `make bench-smoke`)
// instead of a log to eyeball:
//
//	go test -bench . -benchtime=1x -run NONE . | go run ./cmd/benchjson
//
// Only standard benchmark result lines are parsed
// ("BenchmarkName-8  10  123 ns/op [456 B/op  7 allocs/op]"); the
// goos/goarch/pkg header lines fill in context, everything else is
// ignored. Exits non-zero if the stream contains no benchmark results —
// a smoke run that benchmarked nothing is a broken smoke run.
//
// With -compare, the command instead diffs two artifacts it previously
// produced:
//
//	go run ./cmd/benchjson -compare BENCH_pr4.json BENCH_pr6.json
//
// and exits non-zero if any benchmark present in both regressed its
// allocs_per_op. Allocation counts — unlike ns/op — are deterministic
// under -benchtime=1x for serial benchmarks, so the gate is exact by
// default. Benchmarks that spin up goroutines (the parallel figure
// sweeps, the campaign engine) jitter by a handful of allocs/op between
// identical-code runs — the runtime allocates sudogs and grows stacks at
// the scheduler's whim — so -allocslack grants an absolute allowance:
//
//	go run ./cmd/benchjson -compare -allocslack 16 old.json new.json
//
// A slack of 16 absorbs that scheduler noise while still catching any
// real leak: these benchmarks run whole simulations at tens to hundreds
// of thousands of allocs/op, so a per-event or per-frame leak shows up as
// thousands. Comparisons across different binaries (the usual CI case:
// old baseline, new code) drift further than same-binary reruns — a
// changed binary shifts GC pacing, and each extra GC cycle re-fills the
// worker pools — and that drift scales with the benchmark's total
// allocation count (~0.03% of allocs/op in practice, where a real leak
// costs 2% and up). -allocslackpct grants a slack proportional to the
// baseline for exactly that; the effective slack per benchmark is the
// larger of the two allowances:
//
//	go run ./cmd/benchjson -compare -allocslack 16 -allocslackpct 0.25 old.json new.json
//
// so small benchmarks keep the tight absolute bound and big ones get
// noise-proofed without ever excusing a real leak. Growth within the
// slack is still printed (as "drift") so it stays visible. Timings are
// printed for context only unless a -tolerance is given:
//
//	go run ./cmd/benchjson -compare -tolerance 400 old.json new.json
//
// which additionally fails any shared benchmark whose ns_per_op grew by
// more than that percentage; the tolerance exists because
// single-iteration timings jitter wildly, so only a generous bound (an
// order-of-magnitude-ish blowup) is meaningful.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric columns keyed by unit — e.g.
	// "cells/min" from BenchmarkCampaignThroughput or "hops/pkt" from the
	// ablation benchmarks.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		fs := flag.NewFlagSet("benchjson -compare", flag.ExitOnError)
		tolerance := fs.Float64("tolerance", 0,
			"also fail when ns_per_op grows by more than this percentage (0 disables the timing gate)")
		allocSlack := fs.Int64("allocslack", 0,
			"allow allocs_per_op to grow by up to this many allocations (absorbs goroutine-scheduler jitter; 0 = exact)")
		allocSlackPct := fs.Float64("allocslackpct", 0,
			"also allow allocs_per_op to grow by this percentage of the baseline (absorbs cross-binary GC-pacing drift, which scales with benchmark size; the effective slack is the larger of the two)")
		fs.Usage = func() {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-tolerance pct] [-allocslack n] [-allocslackpct pct] old.json new.json")
			fs.PrintDefaults()
		}
		_ = fs.Parse(os.Args[2:]) // ExitOnError: Parse cannot return an error
		if fs.NArg() != 2 {
			fs.Usage()
			os.Exit(2)
		}
		if *tolerance < 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -tolerance must be >= 0")
			os.Exit(2)
		}
		if *allocSlack < 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -allocslack must be >= 0")
			os.Exit(2)
		}
		if *allocSlackPct < 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -allocslackpct must be >= 0")
			os.Exit(2)
		}
		report, regressed, err := compareFiles(fs.Arg(0), fs.Arg(1), *tolerance, *allocSlack, *allocSlackPct)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if regressed {
			os.Exit(1)
		}
		return
	}
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compareFiles loads two artifacts and renders the allocation diff. The
// second return value reports whether any shared benchmark regressed its
// allocs_per_op beyond its effective slack (or, when tolerance > 0, blew
// its ns_per_op bound).
func compareFiles(oldPath, newPath string, tolerance float64, allocSlack int64, allocSlackPct float64) (string, bool, error) {
	load := func(path string) (*document, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc document
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &doc, nil
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		return "", false, err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return "", false, err
	}
	return compare(oldDoc, newDoc, tolerance, allocSlack, allocSlackPct)
}

// compare matches benchmarks by package+name and judges allocs_per_op
// exactly (or within its effective slack: the larger of allocSlack
// absolute allocations and allocSlackPct percent of the baseline); with
// tolerance > 0 it also judges ns_per_op against the percentage bound.
// Benchmarks present on only one side are listed but never judged: a new
// benchmark has no baseline, and a removed one gates nothing.
func compare(oldDoc, newDoc *document, tolerance float64, allocSlack int64, allocSlackPct float64) (string, bool, error) {
	key := func(b benchResult) string { return b.Package + "." + b.Name }
	old := make(map[string]benchResult, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		old[key(b)] = b
	}
	var sb strings.Builder
	regressed, matched := false, 0
	for _, nb := range newDoc.Benchmarks {
		ob, ok := old[key(nb)]
		if !ok {
			fmt.Fprintf(&sb, "  new   %-40s %d allocs/op (no baseline)\n", nb.Name, nb.AllocsPerOp)
			continue
		}
		matched++
		delete(old, key(nb))
		slack := allocSlack
		if pct := int64(float64(ob.AllocsPerOp) * allocSlackPct / 100); pct > slack {
			slack = pct
		}
		switch {
		case nb.AllocsPerOp > ob.AllocsPerOp+slack:
			regressed = true
			fmt.Fprintf(&sb, "  WORSE %-40s %d -> %d allocs/op\n", nb.Name, ob.AllocsPerOp, nb.AllocsPerOp)
		case nb.AllocsPerOp > ob.AllocsPerOp:
			fmt.Fprintf(&sb, "  drift %-40s %d -> %d allocs/op (within slack %d)\n",
				nb.Name, ob.AllocsPerOp, nb.AllocsPerOp, slack)
		case nb.AllocsPerOp < ob.AllocsPerOp:
			fmt.Fprintf(&sb, "  better %-39s %d -> %d allocs/op\n", nb.Name, ob.AllocsPerOp, nb.AllocsPerOp)
		}
		if tolerance > 0 && ob.NsPerOp > 0 {
			growth := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
			if growth > tolerance {
				regressed = true
				fmt.Fprintf(&sb, "  WORSE %-40s %.0f -> %.0f ns/op (+%.0f%%, tolerance %.0f%%)\n",
					nb.Name, ob.NsPerOp, nb.NsPerOp, growth, tolerance)
			}
		}
	}
	gone := make([]string, 0, len(old))
	for name := range old {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(&sb, "  gone  %s\n", name)
	}
	if matched == 0 {
		return "", false, fmt.Errorf("no benchmarks in common between the two artifacts")
	}
	verdict := "PASS"
	if regressed {
		verdict = "FAIL: allocs_per_op or ns_per_op regressed"
	}
	return fmt.Sprintf("benchjson compare: %d matched\n%s%s\n", matched, sb.String(), verdict), regressed, nil
}

func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	doc := &document{Benchmarks: []benchResult{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" progress line
			}
			r.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results on stdin")
	}
	return doc, nil
}

// parseResult parses one result line:
//
//	BenchmarkFig7a-8   3   456789 ns/op   1024 B/op   12 allocs/op
//
// The B/op and allocs/op columns only appear under -benchmem.
func parseResult(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchResult{}, false
	}
	var r benchResult
	r.Name = f[0]
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	r.Name = strings.TrimPrefix(r.Name, "Benchmark")
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Iterations = iters
	// Remaining fields come in "value unit" pairs.
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			// A custom b.ReportMetric column; keep it under its unit.
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, seen
}

// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark smoke runs leave a
// machine-readable artifact (e.g. BENCH_pr3.json via `make bench-smoke`)
// instead of a log to eyeball:
//
//	go test -bench . -benchtime=1x -run NONE . | go run ./cmd/benchjson
//
// Only standard benchmark result lines are parsed
// ("BenchmarkName-8  10  123 ns/op [456 B/op  7 allocs/op]"); the
// goos/goarch/pkg header lines fill in context, everything else is
// ignored. Exits non-zero if the stream contains no benchmark results —
// a smoke run that benchmarked nothing is a broken smoke run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Package     string  `json:"package,omitempty"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric columns keyed by unit — e.g.
	// "cells/min" from BenchmarkCampaignThroughput or "hops/pkt" from the
	// ablation benchmarks.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	doc := &document{Benchmarks: []benchResult{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" progress line
			}
			r.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results on stdin")
	}
	return doc, nil
}

// parseResult parses one result line:
//
//	BenchmarkFig7a-8   3   456789 ns/op   1024 B/op   12 allocs/op
//
// The B/op and allocs/op columns only appear under -benchmem.
func parseResult(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchResult{}, false
	}
	var r benchResult
	r.Name = f[0]
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	r.Name = strings.TrimPrefix(r.Name, "Benchmark")
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Iterations = iters
	// Remaining fields come in "value unit" pairs.
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			// A custom b.ReportMetric column; keep it under its unit.
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, seen
}

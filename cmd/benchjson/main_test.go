package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: alertmanet
BenchmarkFig7aPossibleParticipants-8   	       1	    123456 ns/op	    2048 B/op	      17 allocs/op
BenchmarkFig16aDeliveryRate
BenchmarkFig16aDeliveryRate-8          	       3	  98765432 ns/op
BenchmarkCampaignThroughput-8          	       1	 512345678 ns/op	       937.5 cells/min	     128 B/op	       2 allocs/op
PASS
ok  	alertmanet	1.234s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Fatalf("platform = %q/%q", doc.Goos, doc.Goarch)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "Fig7aPossibleParticipants" || b.Package != "alertmanet" ||
		b.Procs != 8 || b.Iterations != 1 || b.NsPerOp != 123456 ||
		b.BytesPerOp != 2048 || b.AllocsPerOp != 17 {
		t.Fatalf("first result = %+v", b)
	}
	if b.Extra != nil {
		t.Fatalf("first result should have no extra metrics, got %v", b.Extra)
	}
	b = doc.Benchmarks[1]
	if b.Name != "Fig16aDeliveryRate" || b.NsPerOp != 98765432 || b.BytesPerOp != 0 {
		t.Fatalf("second result = %+v", b)
	}
	b = doc.Benchmarks[2]
	if b.Name != "CampaignThroughput" || b.Extra["cells/min"] != 937.5 ||
		b.BytesPerOp != 128 || b.AllocsPerOp != 2 {
		t.Fatalf("throughput result = %+v (extra %v)", b, b.Extra)
	}
}

func TestParseEmptyErrors(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok x 0.1s\n"))); err == nil {
		t.Fatal("want error for a stream with no results")
	}
}

func TestParseResultRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",                // progress line, no columns
		"BenchmarkFoo-8 abc 12 ns/op", // bad iteration count
		"BenchmarkFoo-8 3 xyz ns/op",  // bad value
		"BenchmarkFoo-8 3 12 B/op",    // no ns/op column
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parsed malformed line %q", line)
		}
	}
}

func compareDocs(t *testing.T, oldB, newB []benchResult) (string, bool) {
	t.Helper()
	return compareDocsTol(t, oldB, newB, 0)
}

func compareDocsTol(t *testing.T, oldB, newB []benchResult, tolerance float64) (string, bool) {
	t.Helper()
	report, regressed, err := compare(&document{Benchmarks: oldB}, &document{Benchmarks: newB}, tolerance, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return report, regressed
}

func TestCompareFlagsRegression(t *testing.T) {
	oldB := []benchResult{
		{Package: "p", Name: "A", AllocsPerOp: 10},
		{Package: "p", Name: "B", AllocsPerOp: 5},
	}
	newB := []benchResult{
		{Package: "p", Name: "A", AllocsPerOp: 12}, // worse
		{Package: "p", Name: "B", AllocsPerOp: 5},  // unchanged
	}
	report, regressed := compareDocs(t, oldB, newB)
	if !regressed {
		t.Fatal("regression not flagged")
	}
	if !strings.Contains(report, "WORSE") || !strings.Contains(report, "FAIL") {
		t.Fatalf("report = %q", report)
	}
}

func TestComparePassesOnImprovement(t *testing.T) {
	oldB := []benchResult{{Package: "p", Name: "A", AllocsPerOp: 29}}
	newB := []benchResult{{Package: "p", Name: "A", AllocsPerOp: 3}}
	report, regressed := compareDocs(t, oldB, newB)
	if regressed {
		t.Fatal("improvement flagged as regression")
	}
	if !strings.Contains(report, "better") || !strings.Contains(report, "PASS") {
		t.Fatalf("report = %q", report)
	}
}

func TestCompareIgnoresUnmatched(t *testing.T) {
	oldB := []benchResult{
		{Package: "p", Name: "A", AllocsPerOp: 1},
		{Package: "p", Name: "Gone", AllocsPerOp: 100},
	}
	newB := []benchResult{
		{Package: "p", Name: "A", AllocsPerOp: 1},
		{Package: "p", Name: "New", AllocsPerOp: 999}, // no baseline: listed, not judged
	}
	report, regressed := compareDocs(t, oldB, newB)
	if regressed {
		t.Fatal("unmatched benchmarks must not gate")
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Fatalf("report = %q", report)
	}
}

func TestCompareErrorsWithNothingInCommon(t *testing.T) {
	_, _, err := compare(
		&document{Benchmarks: []benchResult{{Package: "p", Name: "A"}}},
		&document{Benchmarks: []benchResult{{Package: "p", Name: "B"}}}, 0, 0, 0)
	if err == nil {
		t.Fatal("disjoint artifacts must error, not silently pass")
	}
}

func TestCompareAllocSlackAbsorbsJitter(t *testing.T) {
	oldB := []benchResult{{Package: "p", Name: "A", AllocsPerOp: 197107}}
	newB := []benchResult{{Package: "p", Name: "A", AllocsPerOp: 197120}} // +13: scheduler jitter
	report, regressed, err := compare(&document{Benchmarks: oldB}, &document{Benchmarks: newB}, 0, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("+13 allocs within slack 16 must pass")
	}
	if !strings.Contains(report, "drift") {
		t.Fatalf("growth within slack should still be reported, got %q", report)
	}
}

func TestCompareAllocSlackPctScalesWithBaseline(t *testing.T) {
	// Cross-binary GC-pacing drift scales with benchmark size: +76 allocs
	// on a 222k-alloc benchmark (+0.03%) is noise the absolute slack of 16
	// cannot absorb, but 0.25% of the baseline (555) can.
	oldB := []benchResult{
		{Package: "p", Name: "Big", AllocsPerOp: 222258},
		{Package: "p", Name: "Small", AllocsPerOp: 40},
	}
	newB := []benchResult{
		{Package: "p", Name: "Big", AllocsPerOp: 222334},
		{Package: "p", Name: "Small", AllocsPerOp: 50},
	}
	report, regressed, err := compare(&document{Benchmarks: oldB}, &document{Benchmarks: newB}, 0, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Big's +76 fits the proportional slack; Small's +10 fits the absolute
	// slack (0.25% of 40 rounds to 0, so the larger allowance, 16, rules).
	if regressed {
		t.Fatalf("proportional slack should absorb size-scaled drift, got %q", report)
	}
}

func TestCompareAllocSlackPctStillCatchesLeaks(t *testing.T) {
	// A real leak costs percents of allocs/op, far past a sub-percent slack.
	oldB := []benchResult{{Package: "p", Name: "Big", AllocsPerOp: 222258}}
	newB := []benchResult{{Package: "p", Name: "Big", AllocsPerOp: 228000}} // +2.6%
	report, regressed, err := compare(&document{Benchmarks: oldB}, &document{Benchmarks: newB}, 0, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed || !strings.Contains(report, "WORSE") {
		t.Fatalf("+2.6%% allocs must regress past a 0.25%% slack, got %q", report)
	}
}

func TestCompareAllocSlackStillCatchesLeaks(t *testing.T) {
	oldB := []benchResult{{Package: "p", Name: "A", AllocsPerOp: 20913}}
	newB := []benchResult{{Package: "p", Name: "A", AllocsPerOp: 20930}} // +17: past the slack
	report, regressed, err := compare(&document{Benchmarks: oldB}, &document{Benchmarks: newB}, 0, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("+17 allocs past slack 16 must regress")
	}
	if !strings.Contains(report, "WORSE") {
		t.Fatalf("report = %q", report)
	}
}

func TestCompareToleranceGatesNsPerOp(t *testing.T) {
	oldB := []benchResult{{Package: "p", Name: "A", NsPerOp: 100, AllocsPerOp: 3}}
	newB := []benchResult{{Package: "p", Name: "A", NsPerOp: 900, AllocsPerOp: 3}} // +800%
	report, regressed := compareDocsTol(t, oldB, newB, 400)
	if !regressed {
		t.Fatal("+800% ns/op with 400% tolerance must regress")
	}
	if !strings.Contains(report, "ns/op") || !strings.Contains(report, "tolerance") {
		t.Fatalf("report = %q", report)
	}
}

func TestCompareToleranceAllowsJitterWithinBound(t *testing.T) {
	oldB := []benchResult{{Package: "p", Name: "A", NsPerOp: 100, AllocsPerOp: 3}}
	newB := []benchResult{{Package: "p", Name: "A", NsPerOp: 350, AllocsPerOp: 3}} // +250%
	_, regressed := compareDocsTol(t, oldB, newB, 400)
	if regressed {
		t.Fatal("+250% ns/op within 400% tolerance must pass")
	}
}

func TestCompareZeroToleranceIgnoresTimings(t *testing.T) {
	oldB := []benchResult{{Package: "p", Name: "A", NsPerOp: 1, AllocsPerOp: 3}}
	newB := []benchResult{{Package: "p", Name: "A", NsPerOp: 1e9, AllocsPerOp: 3}}
	_, regressed := compareDocs(t, oldB, newB)
	if regressed {
		t.Fatal("tolerance 0 must leave ns/op ungated")
	}
}

func TestCompareToleranceZeroBaselineNeverJudged(t *testing.T) {
	// An old artifact without timings (NsPerOp 0) offers no baseline; the
	// growth ratio would be infinite, so the gate must stay silent.
	oldB := []benchResult{{Package: "p", Name: "A", NsPerOp: 0, AllocsPerOp: 3}}
	newB := []benchResult{{Package: "p", Name: "A", NsPerOp: 5000, AllocsPerOp: 3}}
	_, regressed := compareDocsTol(t, oldB, newB, 400)
	if regressed {
		t.Fatal("zero ns/op baseline must not be judged")
	}
}

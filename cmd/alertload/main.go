// alertload is the load harness that closes the sim-vs-live loop: it runs
// the same scenario through the discrete-event simulator and through a
// fleet of live UDP daemons, writes per-packet JSONL measurement logs for
// both sides, and checks the live numbers against the sim numbers under
// explicit tolerance bands. The fleet is either spawned in-process (the
// default) or a set of externally started alertd processes reached through
// -nodes, which is how the CI live-smoke job exercises real process
// boundaries.
//
// Usage:
//
//	alertload -protocol alert -n 50 -seed 42 -out /tmp/run      # sim+live+check
//	alertload -mode live -nodes fleet.txt -n 5 -seed 7          # external fleet
//	alertload -mode sim -protocol gpsr -n 200                   # sim only
//
// Exit status is nonzero when -check (on by default in mode "both") finds
// a metric outside its band.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/live"
	"alertmanet/internal/telemetry"
)

type config struct {
	sc         experiment.Scenario
	mode       string
	timescale  float64
	nodesFile  string
	outDir     string
	teleDir    string
	teleLayers string
	quit       bool
	check      bool
	band       live.Band
}

func parseField(s string) (geo.Rect, error) {
	var w, h float64
	if _, err := fmt.Sscanf(strings.ToLower(s), "%fx%f", &w, &h); err != nil || w <= 0 || h <= 0 {
		return geo.Rect{}, fmt.Errorf("alertload: -field wants WxH (e.g. 1000x1000), got %q", s)
	}
	return geo.Rect{Max: geo.Point{X: w, Y: h}}, nil
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("alertload", flag.ExitOnError)
	protocol := fs.String("protocol", "alert", "routing protocol: alert|gpsr|alarm|ao2p|zap")
	seed := fs.Int64("seed", 1, "scenario seed")
	n := fs.Int("n", 50, "fleet size")
	field := fs.String("field", "1000x1000", "field dimensions WxH in metres")
	duration := fs.Float64("duration", 30, "traffic duration in emulated seconds")
	drain := fs.Float64("drain", 5, "drain time after traffic stops")
	pairs := fs.Int("pairs", 5, "concurrent source-destination pairs")
	interval := fs.Float64("interval", 2, "seconds between packets of one pair")
	packets := fs.Int("packets", 0, "cap packets per pair (0 = until duration)")
	packetSize := fs.Int("packet-size", 512, "payload size in bytes")
	loss := fs.Float64("loss", 0, "per-frame Bernoulli loss rate")
	mob := fs.String("mobility", "static", "mobility model: static|rwp|group")
	speed := fs.Float64("speed", 2, "node speed for mobile models, m/s")
	chargeSetup := fs.Bool("charge-setup", false, "charge asymmetric session setup on first packets")
	mode := fs.String("mode", "both", "what to run: sim|live|both")
	timescale := fs.Float64("timescale", 0.05, "wall-clock seconds per emulated second (live)")
	nodes := fs.String("nodes", "", "file of alertd control endpoints, one per line (external fleet)")
	out := fs.String("out", "", "directory for JSONL measurement logs and summaries")
	tele := fs.String("telemetry", "", "directory for per-node JSONL telemetry streams (in-process fleet only)")
	teleLayers := fs.String("telemetry-layers", "all", "comma-separated telemetry layers (see tlmgrep)")
	quit := fs.Bool("quit", false, "after the run, ask external -nodes daemons to exit")
	check := fs.Bool("check", true, "in mode both, exit nonzero when live falls outside the bands")
	bandDelivery := fs.Float64("band-delivery", live.DefaultBand().DeliveryAbs, "absolute delivery-rate tolerance")
	bandLatency := fs.Float64("band-latency", live.DefaultBand().LatencyRel, "relative mean-latency tolerance")
	bandHops := fs.Float64("band-hops", live.DefaultBand().HopsRel, "relative hops-per-packet tolerance")
	fs.Parse(args)

	rect, err := parseField(*field)
	if err != nil {
		return config{}, err
	}
	sc := experiment.DefaultScenario()
	sc.Protocol = experiment.ProtocolName(*protocol)
	sc.Seed = *seed
	sc.N = *n
	sc.Field = rect
	sc.Duration = *duration
	sc.DrainTime = *drain
	sc.Pairs = *pairs
	sc.Interval = *interval
	sc.Packets = *packets
	sc.PacketSize = *packetSize
	sc.LossRate = *loss
	sc.Mobility = experiment.MobilityName(*mob)
	sc.Speed = *speed
	sc.LocUpdates = *mob != "static"
	sc.Alert.ChargeSessionSetup = *chargeSetup
	if err := sc.Validate(); err != nil {
		return config{}, err
	}
	switch *mode {
	case "sim", "live", "both":
	default:
		return config{}, fmt.Errorf("alertload: -mode wants sim|live|both, got %q", *mode)
	}
	if *nodes != "" && *mode == "sim" {
		return config{}, fmt.Errorf("alertload: -nodes is meaningless in -mode sim")
	}
	if *tele != "" && *nodes != "" {
		return config{}, fmt.Errorf("alertload: -telemetry taps the in-process fleet; external alertd nodes take their own -telemetry flag")
	}
	return config{
		sc: sc, mode: *mode, timescale: *timescale, nodesFile: *nodes,
		outDir: *out, teleDir: *tele, teleLayers: *teleLayers,
		quit: *quit, check: *check && *mode == "both",
		band: live.Band{DeliveryAbs: *bandDelivery, LatencyRel: *bandLatency, HopsRel: *bandHops},
	}, nil
}

// writeJSONL writes one JSON document per element, one per line — the
// standard shape for downstream jq/pandas slicing.
func writeJSONL[T any](path string, items []T) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runSim executes the scenario in the simulator and returns the result
// plus the per-packet records for the JSONL log.
func runSim(cfg config) (experiment.Result, error) {
	res, w, err := experiment.RunWorld(cfg.sc, nil)
	if err != nil {
		return experiment.Result{}, err
	}
	if cfg.outDir != "" {
		recs := w.Proto.Collector().Records()
		if err := writeJSONL(filepath.Join(cfg.outDir, "sim_packets.jsonl"), recs); err != nil {
			return experiment.Result{}, err
		}
		if err := writeJSONFile(filepath.Join(cfg.outDir, "sim_summary.json"), res); err != nil {
			return experiment.Result{}, err
		}
	}
	return res, nil
}

// runLive executes the scenario on a live fleet — in-process unless
// -nodes names an external one — and logs the measurements.
func runLive(cfg config) (live.Summary, error) {
	var sum live.Summary
	if cfg.nodesFile != "" {
		endpoints, err := readEndpoints(cfg.nodesFile)
		if err != nil {
			return live.Summary{}, err
		}
		w, err := experiment.Build(cfg.sc)
		if err != nil {
			return live.Summary{}, err
		}
		if len(endpoints) != w.Mob.N() {
			return live.Summary{}, fmt.Errorf("alertload: scenario has %d nodes but %s lists %d endpoints",
				w.Mob.N(), cfg.nodesFile, len(endpoints))
		}
		handles := make([]live.NodeHandle, 0, len(endpoints))
		for _, ep := range endpoints {
			h, err := live.Dial(ep)
			if err != nil {
				return live.Summary{}, err
			}
			handles = append(handles, h)
		}
		sum, err = live.NewCoordinator(w, handles, cfg.timescale).Run()
		if err != nil {
			return live.Summary{}, err
		}
		if cfg.quit {
			for _, h := range handles {
				if err := h.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "alertload: quit node %d: %v\n", h.ID(), err)
				}
			}
		}
	} else if cfg.teleDir != "" {
		var err error
		sum, err = runLiveWithTelemetry(cfg)
		if err != nil {
			return live.Summary{}, err
		}
	} else {
		var err error
		sum, err = live.RunFleet(cfg.sc, cfg.timescale)
		if err != nil {
			return live.Summary{}, err
		}
	}
	if cfg.outDir != "" {
		if err := writeJSONL(filepath.Join(cfg.outDir, "live_sends.jsonl"), sum.Sends); err != nil {
			return live.Summary{}, err
		}
		if err := writeJSONL(filepath.Join(cfg.outDir, "live_deliveries.jsonl"), sum.Deliveries); err != nil {
			return live.Summary{}, err
		}
		if err := writeJSONFile(filepath.Join(cfg.outDir, "live_summary.json"), sum); err != nil {
			return live.Summary{}, err
		}
	}
	return sum, nil
}

// runLiveWithTelemetry runs the in-process fleet with every node's tap
// writing a per-node JSONL stream under -telemetry; the streams use the
// same event schema as sim telemetry, so tlmgrep slices them unchanged.
func runLiveWithTelemetry(cfg config) (live.Summary, error) {
	mask, err := telemetry.ParseLayers(cfg.teleLayers)
	if err != nil {
		return live.Summary{}, err
	}
	if err := os.MkdirAll(cfg.teleDir, 0o755); err != nil {
		return live.Summary{}, err
	}
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	var openErr error
	tapFor := func(id int) *telemetry.Tap {
		f, err := os.Create(filepath.Join(cfg.teleDir, fmt.Sprintf("node_%03d.jsonl", id)))
		if err != nil {
			openErr = err
			return nil
		}
		files = append(files, f)
		return telemetry.New(f, mask)
	}
	fl, err := live.SpawnFleetWithTaps(cfg.sc, cfg.timescale, tapFor)
	if err != nil {
		return live.Summary{}, err
	}
	defer fl.Close()
	if openErr != nil {
		return live.Summary{}, openErr
	}
	return live.NewCoordinator(fl.World, fl.Handles(), cfg.timescale).Run()
}

// readEndpoints parses a fleet file: one alertd line per node, control
// address first ("<control> <udp>" as alertd's -addr-file writes, or just
// the control address). Blank lines and #-comments are skipped.
func readEndpoints(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var eps []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eps = append(eps, strings.Fields(line)[0])
	}
	return eps, nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
	}

	var simRes experiment.Result
	var liveSum live.Summary
	if cfg.mode != "live" {
		if simRes, err = runSim(cfg); err != nil {
			return err
		}
		fmt.Printf("sim:  sent %d delivered %d rate %.3f meanlat %.4fs hops %.2f\n",
			simRes.Sent, simRes.Delivered, simRes.DeliveryRate, simRes.MeanLatency, simRes.HopsPerPacket)
	}
	if cfg.mode != "sim" {
		if liveSum, err = runLive(cfg); err != nil {
			return err
		}
		fmt.Printf("live: sent %d delivered %d rate %.3f meanlat %.4fs hops %.2f\n",
			liveSum.Sent, liveSum.Delivered, liveSum.DeliveryRate, liveSum.MeanLatency, liveSum.HopsPerPkt)
	}
	if cfg.mode != "both" {
		return nil
	}

	cmp := live.Compare(simRes, liveSum, cfg.band)
	fmt.Print(cmp.String())
	if cfg.outDir != "" {
		if err := writeJSONFile(filepath.Join(cfg.outDir, "compare.json"), cmp); err != nil {
			return err
		}
	}
	if cfg.check && !cmp.OK {
		return fmt.Errorf("alertload: live run outside tolerance bands")
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command figures regenerates every simulation figure and table of the
// paper's evaluation (Section 5) by running the corresponding experiments.
//
//	figures -seeds 5 all
//	figures fig14a fig15a
//	figures table1
//
// Figure names: fig10a fig10b fig11 fig12 fig13a fig13b fig14a fig14b
// fig15a fig15b fig16a fig16b fig17 table1 anonymity energy compare. The paper averages 30
// seeds; lower -seeds for a faster pass (shapes stabilize by ~5).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"alertmanet/internal/analysis"
	"alertmanet/internal/experiment"
)

func main() {
	seeds := flag.Int("seeds", 5, "independent runs per data point (paper: 30)")
	format := flag.String("format", "text", "output format: text or csv")
	outDir := flag.String("o", "", "write each figure to <dir>/<name>.{txt,csv} instead of stdout")
	flag.Parse()
	baseRender := experiment.RenderSeries
	ext := ".txt"
	if *format == "csv" {
		baseRender = experiment.RenderCSV
		ext = ".csv"
	}
	current := ""
	render := func(w io.Writer, title string, series []analysis.Series) {
		if *outDir == "" {
			baseRender(w, title, series)
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, current+ext)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		baseRender(f, title, series)
		f.Close()
		fmt.Println("wrote", path)
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func()) {
		if all || want[name] {
			current = name
			fn()
			ran++
			fmt.Println()
		}
	}

	times := []float64{0, 5, 10, 15, 20, 30, 40, 50}

	run("fig10a", func() {
		render(os.Stdout,
			"Fig. 10a: cumulative actual participating nodes vs packets",
			experiment.Fig10a(20, *seeds))
	})
	run("fig10b", func() {
		render(os.Stdout,
			"Fig. 10b: participating nodes after 20 packets vs network size",
			experiment.Fig10b(20, *seeds))
	})
	run("fig11", func() {
		render(os.Stdout,
			"Fig. 11: random forwarders vs partitions (simulated; cf. Fig. 7b)",
			[]analysis.Series{experiment.Fig11(7, *seeds)})
	})
	run("fig12", func() {
		render(os.Stdout,
			"Fig. 12: remaining nodes in Z_D vs time by density (H=5, v=2)",
			experiment.Fig12(times, *seeds))
	})
	run("fig13a", func() {
		render(os.Stdout,
			"Fig. 13a: remaining nodes vs time by H and speed (N=200)",
			experiment.Fig13a(times, *seeds))
	})
	run("fig13b", func() {
		render(os.Stdout,
			"Fig. 13b: required density vs speed (4 nodes remaining at t=10s)",
			[]analysis.Series{experiment.Fig13b(4, []float64{1, 2, 4, 6, 8}, *seeds)})
	})
	run("fig14a", func() {
		render(os.Stdout,
			"Fig. 14a: latency per packet (s) vs number of nodes",
			experiment.Fig14a(*seeds))
	})
	run("fig14b", func() {
		render(os.Stdout,
			"Fig. 14b: latency per packet (s) vs node speed",
			experiment.Fig14b(*seeds))
	})
	run("fig15a", func() {
		render(os.Stdout,
			"Fig. 15a: hops per packet vs number of nodes",
			experiment.Fig15a(*seeds))
	})
	run("fig15b", func() {
		render(os.Stdout,
			"Fig. 15b: hops per packet vs node speed",
			experiment.Fig15b(*seeds))
	})
	run("fig16a", func() {
		render(os.Stdout,
			"Fig. 16a: delivery rate vs number of nodes",
			experiment.Fig16a(*seeds))
	})
	run("fig16b", func() {
		render(os.Stdout,
			"Fig. 16b: delivery rate vs node speed (with/without destination update)",
			experiment.Fig16b(*seeds))
	})
	run("fig17", func() {
		render(os.Stdout,
			"Fig. 17: ALERT delay (s) under different movement models",
			experiment.Fig17(*seeds))
	})
	run("energy", func() {
		fmt.Println("== Energy per delivered packet (transmission + cryptography) ==")
		for _, p := range []experiment.ProtocolName{
			experiment.ALERT, experiment.GPSR, experiment.ALARM, experiment.AO2P,
		} {
			var e float64
			for s := 1; s <= *seeds; s++ {
				sc := experiment.DefaultScenario()
				sc.Seed = int64(s)
				sc.Protocol = p
				sc.Duration = 40
				e += experiment.MustRun(sc).EnergyPerDelivered
			}
			fmt.Printf("  %-6s %8.2f mJ\n", p, e/float64(*seeds)*1e3)
		}
	})
	run("compare", func() {
		fmt.Println("== Pairwise protocol comparisons (Welch's t-test, 95%) ==")
		comps := experiment.CompareProtocols([]experiment.ProtocolName{
			experiment.ALERT, experiment.GPSR, experiment.ALARM, experiment.AO2P,
		}, *seeds, 40)
		for _, c := range comps {
			verdict := "not significant"
			if c.Welch.Significant {
				verdict = "SIGNIFICANT"
			}
			fmt.Printf("  %-17s %-6s %10.4f  vs  %-6s %10.4f   t=%7.2f df=%-3d %s\n",
				c.Metric, c.A, c.MeanA, c.B, c.MeanB, c.Welch.T, c.Welch.DF, verdict)
		}
	})
	run("table1", func() {
		fmt.Println("== Table 1: anonymous routing protocol taxonomy ==")
		fmt.Print(experiment.FormatTable1())
	})
	run("anonymity", func() {
		fmt.Println("== Section 3 attack experiments ==")
		for _, guard := range []bool{false, true} {
			dstIn, exposed := 0, 0
			for s := int64(1); s <= int64(*seeds); s++ {
				r := experiment.IntersectionAttack(s, 25, guard)
				if r.DstCandidate {
					dstIn++
				}
				if r.Exposed {
					exposed++
				}
			}
			fmt.Printf("  intersection attack (guard=%v): D still candidate %d/%d, exposed %d/%d\n",
				guard, dstIn, *seeds, exposed, *seeds)
		}
		with := experiment.SourceAnonymity(1, true)
		without := experiment.SourceAnonymity(1, false)
		fmt.Printf("  notify-and-go: anonymity set %d (eta=%d) vs %d without\n",
			with.AnonymitySet, with.Neighbors, without.AnonymitySet)
		fmt.Printf("  timing attack score: ALERT %.2f vs GPSR %.2f\n",
			experiment.TimingAttackScore(1, experiment.ALERT, 20),
			experiment.TimingAttackScore(1, experiment.GPSR, 20))
		fmt.Printf("  interception by 3 compromised nodes: ALERT %.2f vs GPSR %.2f\n",
			experiment.InterceptionExperiment(1, experiment.ALERT, 20, 3),
			experiment.InterceptionExperiment(1, experiment.GPSR, 20, 3))
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no matching figures among %v\n", targets)
		os.Exit(2)
	}
}

// Command figures regenerates every simulation figure and table of the
// paper's evaluation (Section 5) by running the corresponding experiments
// through the campaign engine, so repeated and cross-figure duplicate
// cells execute once.
//
//	figures -seeds 5 all
//	figures fig14a fig15a
//	figures -cache-dir out/cache -jobs 8 all
//
// Figure names: fig10a fig10b fig11 fig12 fig13a fig13b fig14a fig14b
// fig15a fig15b fig16a fig16b fig17 table1 anonymity energy compare. The paper averages 30
// seeds; lower -seeds for a faster pass (shapes stabilize by ~5).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"alertmanet/internal/analysis"
	"alertmanet/internal/campaign"
	"alertmanet/internal/experiment"
)

func main() {
	seeds := flag.Int("seeds", 5, "independent runs per data point (paper: 30)")
	format := flag.String("format", "text", "output format: text or csv")
	outDir := flag.String("o", "", "write each figure to <dir>/<name>.{txt,csv} instead of stdout")
	jobs := flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache shared across runs (empty = no cache)")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	baseRender := experiment.RenderSeries
	ext := ".txt"
	if *format == "csv" {
		baseRender = experiment.RenderCSV
		ext = ".csv"
	}
	current := ""
	render := func(w io.Writer, title string, series []analysis.Series) {
		if *outDir == "" {
			baseRender(w, title, series)
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*outDir, current+ext)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		baseRender(f, title, series)
		f.Close()
		fmt.Println("wrote", path)
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func()) {
		if all || want[name] {
			current = name
			fn()
			ran++
			fmt.Println()
		}
	}

	// Every figure executes through one campaign engine, so a cell shared
	// by several figures (the Fig. 14b/15b/16b speed sweep) runs once.
	eng := &campaign.Engine{Name: "figures", Jobs: *jobs}
	if *cacheDir != "" {
		cache, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		eng.Cache = cache
	}

	for _, f := range experiment.Figures() {
		if f.Name == "energy" {
			// Rendered as a table below, in its historical place.
			continue
		}
		fig := f
		run(fig.Name, func() {
			series, err := fig.Render(eng, *seeds)
			if err != nil {
				fail(err)
			}
			render(os.Stdout, fig.Title, series)
		})
	}
	run("energy", func() {
		series, err := experiment.EnergySummary(eng, *seeds)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Energy per delivered packet (transmission + cryptography) ==")
		for _, s := range series {
			fmt.Printf("  %-6s %8.2f mJ\n", s.Label, s.Y[0]*1e3)
		}
	})
	run("compare", func() {
		fmt.Println("== Pairwise protocol comparisons (Welch's t-test, 95%) ==")
		comps, err := experiment.CompareProtocols(eng, []experiment.ProtocolName{
			experiment.ALERT, experiment.GPSR, experiment.ALARM, experiment.AO2P,
		}, *seeds, 40)
		if err != nil {
			fail(err)
		}
		for _, c := range comps {
			verdict := "not significant"
			if c.Welch.Significant {
				verdict = "SIGNIFICANT"
			}
			fmt.Printf("  %-17s %-6s %10.4f  vs  %-6s %10.4f   t=%7.2f df=%-3d %s\n",
				c.Metric, c.A, c.MeanA, c.B, c.MeanB, c.Welch.T, c.Welch.DF, verdict)
		}
	})
	run("table1", func() {
		fmt.Println("== Table 1: anonymous routing protocol taxonomy ==")
		fmt.Print(experiment.FormatTable1())
	})
	run("anonymity", func() {
		fmt.Println("== Section 3 attack experiments ==")
		for _, guard := range []bool{false, true} {
			dstIn, exposed := 0, 0
			for s := int64(1); s <= int64(*seeds); s++ {
				r := experiment.IntersectionAttack(s, 25, guard)
				if r.DstCandidate {
					dstIn++
				}
				if r.Exposed {
					exposed++
				}
			}
			fmt.Printf("  intersection attack (guard=%v): D still candidate %d/%d, exposed %d/%d\n",
				guard, dstIn, *seeds, exposed, *seeds)
		}
		with := experiment.SourceAnonymity(1, true)
		without := experiment.SourceAnonymity(1, false)
		fmt.Printf("  notify-and-go: anonymity set %d (eta=%d) vs %d without\n",
			with.AnonymitySet, with.Neighbors, without.AnonymitySet)
		fmt.Printf("  timing attack score: ALERT %.2f vs GPSR %.2f\n",
			experiment.TimingAttackScore(1, experiment.ALERT, 20),
			experiment.TimingAttackScore(1, experiment.GPSR, 20))
		fmt.Printf("  interception by 3 compromised nodes: ALERT %.2f vs GPSR %.2f\n",
			experiment.InterceptionExperiment(1, experiment.ALERT, 20, 3),
			experiment.InterceptionExperiment(1, experiment.GPSR, 20, 3))
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no matching figures among %v\n", targets)
		os.Exit(2)
	}
}

// Command alertlint runs the repository's determinism and error-discipline
// analyzers (internal/lint) over Go packages.
//
// Usage:
//
//	go run ./cmd/alertlint ./...
//
// It exits non-zero if any analyzer reports a finding.
//
// The binary speaks two protocols. Invoked with package patterns it acts as
// the driver: it re-executes itself through `go vet -vettool`, which hands
// the build system all package loading, caching and fact plumbing — the same
// machinery the standard vet analyzers use. Invoked by the go command (with
// -V=full, -flags, or a *.cfg compilation-unit file) it acts as the analysis
// tool via unitchecker.
//
// A third mode, `alertlint -allowlist [dir]`, audits the escape hatches: it
// prints every //lint:allow* annotation in the tree (default ".") with its
// recorded reason, so reviewers can see exactly which contract exemptions
// exist and why without grepping.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"alertmanet/internal/lint"
	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis/unitchecker"
)

func main() {
	if toolInvocation(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}

	if len(os.Args) > 1 && os.Args[1] == "-allowlist" {
		root := "."
		if len(os.Args) > 2 {
			root = os.Args[2]
		}
		os.Exit(allowlist(os.Stdout, root))
	}

	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "alertlint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "alertlint: %v\n", err)
		os.Exit(2)
	}
}

// allowlist prints the full exemption surface and returns the process exit
// code: first the static package grants each analyzer ships with (whole
// packages where the contract is inverted), then every //lint: annotation
// under root with its recorded reason — file:line, marker, justification.
func allowlist(w *os.File, root string) int {
	for _, g := range lint.PackageGrants() {
		for _, pkg := range g.Packages {
			fmt.Fprintf(w, "grant: %s: %s: %s\n", g.Analyzer, pkg, g.Reason)
		}
	}
	anns, err := lintutil.ScanAnnotations(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alertlint: -allowlist: %v\n", err)
		return 2
	}
	for _, a := range anns {
		fmt.Fprintf(w, "%s:%d: %s: %s\n", a.File, a.Line, a.Marker, a.Reason)
	}
	fmt.Fprintf(w, "%d annotated site(s), %d package grant(s)\n", len(anns), len(lint.PackageGrants()))
	return 0
}

// toolInvocation reports whether the arguments are the go command's
// vet-tool protocol rather than user-supplied package patterns.
func toolInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

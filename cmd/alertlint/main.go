// Command alertlint runs the repository's determinism and error-discipline
// analyzers (internal/lint) over Go packages.
//
// Usage:
//
//	go run ./cmd/alertlint ./...
//
// It exits non-zero if any analyzer reports a finding.
//
// The binary speaks two protocols. Invoked with package patterns it acts as
// the driver: it re-executes itself through `go vet -vettool`, which hands
// the build system all package loading, caching and fact plumbing — the same
// machinery the standard vet analyzers use. Invoked by the go command (with
// -V=full, -flags, or a *.cfg compilation-unit file) it acts as the analysis
// tool via unitchecker.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"alertmanet/internal/lint"

	"golang.org/x/tools/go/analysis/unitchecker"
)

func main() {
	if toolInvocation(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}

	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "alertlint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "alertlint: %v\n", err)
		os.Exit(2)
	}
}

// toolInvocation reports whether the arguments are the go command's
// vet-tool protocol rather than user-supplied package patterns.
func toolInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// Command tlmgrep filters a telemetry JSONL stream (written by
// alertsim -telemetry) by packet id, node involvement, event kind or layer,
// so one packet's whole story — or one node's whole day — can be pulled out
// of a multi-megabyte run in one command.
//
// Examples:
//
//	tlmgrep -packet 17 run.jsonl          # everything about packet 17
//	tlmgrep -node 42 run.jsonl            # everything node 42 touched
//	tlmgrep -kind loss run.jsonl          # every lost frame
//	tlmgrep -layer route -packet 3 run.jsonl
//	tlmgrep -count -kind leg run.jsonl    # just count leg terminations
//
// With no file arguments the stream is read from stdin, so it composes with
// compression or a pipe straight out of a run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"alertmanet/internal/telemetry"
)

func main() {
	var (
		packet = flag.Int("packet", -1, "keep events attributed to this packet id")
		nodeID = flag.Int("node", -1, "keep events involving this node (any role)")
		kind   = flag.String("kind", "", "keep events of this kind exactly (e.g. tx, loss, hop, leg, zonecast)")
		layers = flag.String("layer", "", "keep events of these layers (comma-separated sim,medium,route,packet,crypto; empty keeps all)")
		count  = flag.Bool("count", false, "print only the number of matching events")
	)
	flag.Parse()

	filter := telemetry.NewFilter()
	filter.Trace = *packet
	filter.Node = *nodeID
	filter.Kind = *kind
	if *layers != "" {
		mask, err := telemetry.ParseLayers(*layers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlmgrep:", err)
			os.Exit(2)
		}
		filter.Layers = mask
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	matched := 0

	grep := func(name string, r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			ev, err := telemetry.ParseLine(line)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", name, lineNo, err)
			}
			if !filter.Match(ev) {
				continue
			}
			matched++
			if !*count {
				out.Write(line)
				out.WriteByte('\n')
			}
		}
		return sc.Err()
	}

	args := flag.Args()
	if len(args) == 0 {
		if err := grep("stdin", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "tlmgrep:", err)
			os.Exit(1)
		}
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlmgrep:", err)
			os.Exit(1)
		}
		err = grep(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlmgrep:", err)
			os.Exit(1)
		}
	}
	if *count {
		fmt.Fprintln(out, matched)
	}
}

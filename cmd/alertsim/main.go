// Command alertsim runs one MANET simulation scenario and prints the
// paper's evaluation metrics.
//
// Examples:
//
//	alertsim                                   # ALERT, paper defaults
//	alertsim -protocol gpsr -nodes 100
//	alertsim -protocol alert -speed 8 -no-updates
//	alertsim -seeds 30                         # mean ± 95% CI over 30 runs
//	alertsim -mobility group -groups 5 -grouprange 200
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"

	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/telemetry"
	"alertmanet/internal/trace"
)

func main() {
	var (
		protocol   = flag.String("protocol", "alert", "protocol: alert, gpsr, alarm, ao2p, zap")
		nodes      = flag.Int("nodes", 200, "number of nodes")
		speed      = flag.Float64("speed", 2, "node speed in m/s")
		duration   = flag.Float64("duration", 100, "simulated seconds of traffic")
		drain      = flag.Float64("drain", 10, "extra seconds for in-flight packets to finish")
		pairs      = flag.Int("pairs", 10, "S-D communication pairs")
		interval   = flag.Float64("interval", 2, "seconds between packets per pair")
		seed       = flag.Int64("seed", 1, "random seed")
		seeds      = flag.Int("seeds", 1, "number of independent runs to aggregate")
		mobility   = flag.String("mobility", "rwp", "mobility: rwp, group, static, ns2")
		groups     = flag.Int("groups", 10, "groups for group mobility")
		groupRange = flag.Float64("grouprange", 150, "group movement range in meters")
		loss       = flag.Float64("loss", 0, "random frame loss probability")
		noUpdates  = flag.Bool("no-updates", false, "disable destination location updates")
		k          = flag.Int("k", 6, "ALERT destination k-anonymity")
		hOverride  = flag.Int("H", 0, "override ALERT partition count (0 = derive from k)")
		notify     = flag.Bool("notify-and-go", false, "enable ALERT source cover traffic")
		guard      = flag.Bool("intersection-guard", false, "enable ALERT two-step multicast")
		confirm    = flag.Bool("confirm", false, "enable confirmations + retransmission")
		naks       = flag.Bool("naks", false, "enable NAK-based loss recovery")
		showMap    = flag.Bool("map", false, "print an ASCII map of one routed packet")
		svgOut     = flag.String("svg", "", "write an SVG of one routed packet to this file")
		traceFile  = flag.String("ns2-trace", "", "replay an NS-2 setdest movement script")
		preset     = flag.String("preset", "", "start from a named preset (see -list-presets)")
		listPre    = flag.Bool("list-presets", false, "list scenario presets and exit")
		workload   = flag.String("workload", "cbr", "traffic model: cbr, poisson, burst")
		tlmFile    = flag.String("telemetry", "", "write a structured JSONL event stream to this file (single seed only); a run manifest goes to FILE.manifest.json")
		tlmLayers  = flag.String("tlm-layers", "all", "telemetry layers to record: comma-separated sim,medium,route,packet,crypto, or all")
		pprofFile  = flag.String("pprof", "", "write a CPU profile to this file")
		traceOut   = flag.String("trace", "", "write a Go execution trace to this file")
		progress   = flag.Bool("progress", false, "with -seeds > 1, print a line as each seed finishes")
		shards     = flag.Int("shards", 0, "event-engine shards, power of two (0 = unsharded); results are identical for any value")
	)
	flag.Parse()

	if *listPre {
		for _, p := range experiment.Presets() {
			fmt.Printf("  %-14s %s\n", p.Name, p.Description)
		}
		return
	}

	sc := experiment.DefaultScenario()
	if *preset != "" {
		p, err := experiment.FindPreset(*preset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc = p.Scenario
		// Explicit flags below still override the preset where given.
	}
	sc.Seed = *seed
	sc.Protocol = experiment.ProtocolName(*protocol)
	sc.N = *nodes
	sc.Speed = *speed
	sc.Duration = *duration
	sc.DrainTime = *drain
	sc.Pairs = *pairs
	sc.Interval = *interval
	sc.Mobility = experiment.MobilityName(*mobility)
	if *traceFile != "" {
		sc.Mobility = experiment.NS2Trace
		sc.NS2TracePath = *traceFile
	}
	sc.Groups = *groups
	sc.GroupRange = *groupRange
	sc.LossRate = *loss
	sc.LocUpdates = !*noUpdates
	sc.Alert.K = *k
	sc.Alert.H = *hOverride
	sc.Alert.NotifyAndGo = *notify
	sc.Alert.IntersectionGuard = *guard
	sc.Alert.Confirm = *confirm
	sc.Alert.NAKs = *naks
	sc.Workload = experiment.WorkloadName(*workload)
	sc.Shards = *shards

	if err := sc.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *pprofFile != "" {
		f, err := os.Create(*pprofFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}

	fmt.Printf("scenario: %s, %d nodes, %.0f m/s, %s mobility, %.0f s, %d pairs\n",
		sc.Protocol, sc.N, sc.Speed, sc.Mobility, sc.Duration, sc.Pairs)

	if *showMap {
		printRouteMap(sc, "")
	}
	if *svgOut != "" {
		printRouteMap(sc, *svgOut)
	}

	if *tlmFile != "" && *seeds > 1 {
		fmt.Fprintln(os.Stderr, "alertsim: -telemetry records one run; use -seeds 1 (with -seed to pick it)")
		os.Exit(2)
	}

	if *seeds <= 1 {
		var r experiment.Result
		var err error
		if *tlmFile != "" {
			r, err = runTelemetry(sc, *tlmFile, *tlmLayers)
		} else {
			r, err = experiment.Run(sc)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("packets sent:          %d\n", r.Sent)
		fmt.Printf("packets delivered:     %d\n", r.Delivered)
		fmt.Printf("delivery rate:         %.4f\n", r.DeliveryRate)
		fmt.Printf("latency per packet:    %.2f ms\n", r.MeanLatency*1e3)
		fmt.Printf("hops per packet:       %.2f\n", r.HopsPerPacket)
		fmt.Printf("random forwarders:     %.2f\n", r.MeanRFs)
		fmt.Printf("participating nodes:   %d\n", r.Participants)
		fmt.Printf("route similarity:      %.3f (Jaccard; low = anonymous)\n", r.RouteJaccard)
		fmt.Printf("energy per delivered:  %.2f mJ\n", r.EnergyPerDelivered*1e3)
		return
	}

	var agg experiment.Aggregate
	var err error
	if *progress {
		done := 0
		var results []experiment.Result
		results, err = experiment.RunParallelProgress(sc, *seeds, func(seed int, r experiment.Result) {
			done++
			fmt.Printf("seed %3d done (%d/%d): delivery %.4f, latency %.2f ms\n",
				seed, done, *seeds, r.DeliveryRate, r.MeanLatency*1e3)
		})
		if err == nil {
			agg = experiment.AggregateResults(results)
		}
	} else {
		agg, err = experiment.RunSeeds(sc, *seeds)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("aggregated over %d runs (mean ± 95%% CI):\n", *seeds)
	fmt.Printf("delivery rate:         %.4f ± %.4f\n", agg.DeliveryRate.Mean, agg.DeliveryRate.CI95)
	fmt.Printf("latency per packet:    %.2f ± %.2f ms\n", agg.MeanLatency.Mean*1e3, agg.MeanLatency.CI95*1e3)
	fmt.Printf("hops per packet:       %.2f ± %.2f\n", agg.HopsPerPacket.Mean, agg.HopsPerPacket.CI95)
	fmt.Printf("random forwarders:     %.2f ± %.2f\n", agg.MeanRFs.Mean, agg.MeanRFs.CI95)
	fmt.Printf("participating nodes:   %.1f ± %.1f\n", agg.Participants.Mean, agg.Participants.CI95)
	fmt.Printf("route similarity:      %.3f ± %.3f\n", agg.RouteJaccard.Mean, agg.RouteJaccard.CI95)
}

// runTelemetry runs one seed with a telemetry tap threaded through the
// stack, writing the JSONL event stream to path and the run manifest to
// path+".manifest.json". The stream holds only simulated-time data, so two
// runs of the same scenario and seed produce byte-identical files; wall-
// clock quantities live in the manifest alone.
func runTelemetry(sc experiment.Scenario, path, layers string) (experiment.Result, error) {
	mask, err := telemetry.ParseLayers(layers)
	if err != nil {
		return experiment.Result{}, err
	}
	f, err := os.Create(path)
	if err != nil {
		return experiment.Result{}, err
	}
	defer f.Close()
	tap := telemetry.New(f, mask)

	start := time.Now()
	res, w, err := experiment.RunWorld(sc, tap)
	if err != nil {
		return experiment.Result{}, err
	}
	wall := time.Since(start).Seconds()

	simEnd := sc.Duration + sc.DrainTime
	tap.WriteSnapshot(simEnd)
	if err := tap.Flush(); err != nil {
		return experiment.Result{}, err
	}

	mf, err := os.Create(path + ".manifest.json")
	if err != nil {
		return experiment.Result{}, err
	}
	defer mf.Close()
	m := telemetry.Manifest{
		ScenarioHash:    sc.Hash(),
		Seed:            sc.Seed,
		Protocol:        string(sc.Protocol),
		GoVersion:       runtime.Version(),
		WallSeconds:     wall,
		SimSeconds:      simEnd,
		ProcessedEvents: w.Eng.Processed(),
		EmittedEvents:   tap.Events(),
	}
	if err := m.Encode(mf); err != nil {
		return experiment.Result{}, err
	}
	fmt.Printf("telemetry: %d events -> %s (manifest %s.manifest.json)\n",
		tap.Events(), path, path)
	return res, nil
}

// printRouteMap runs one packet on a fresh copy of the scenario and renders
// its route as an ASCII map (svgPath == "") or an SVG file.
func printRouteMap(sc experiment.Scenario, svgPath string) {
	w, err := experiment.Build(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pairs := w.ChoosePairs()[:1]
	w.StartWorkload(pairs)
	w.Eng.RunUntil(10)
	for _, r := range w.Proto.Collector().Records() {
		if !r.Delivered {
			continue
		}
		positions := make([]geo.Point, w.Net.N())
		for id := range positions {
			positions[id] = w.Med.PositionNow(medium.NodeID(id))
		}
		zd := experiment.ZoneOf(w, r.Dst)
		if svgPath != "" {
			title := fmt.Sprintf("%s route, %d hops", sc.Protocol, r.Hops)
			svg := trace.RouteSVG(w.Net.Field(), positions, r.Path, r.Src, r.Dst,
				zd, trace.SVGOptions{Title: title})
			if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote", svgPath)
			return
		}
		fmt.Println("route of one delivered packet ('S' source, 'D' destination,")
		fmt.Println("numbered relays in hop order, '#' destination zone):")
		m, err := trace.RouteMap(w.Net.Field(), positions, r.Path, r.Src, r.Dst,
			zd, 76, 30)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(m)
		return
	}
	fmt.Println("(no packet delivered in the first 10 s; no map)")
}

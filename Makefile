# Convenience targets for the ALERT reproduction.

GO ?= go

.PHONY: all build test test-sharded vet lint allowlist race cover bench bench-smoke figures campaign-smoke campaign-distributed-smoke live-smoke analysis experiments fuzz clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# alertlint runs the nine-analyzer static-contract suite (see DESIGN.md,
# "The determinism contract" → "Static contracts"). Exits non-zero on
# findings.
lint:
	$(GO) run ./cmd/alertlint ./...

# Print every //lint:allow* escape-hatch annotation with its recorded
# reason — the audit trail for the lint contracts.
allowlist:
	$(GO) run ./cmd/alertlint -allowlist .

test:
	$(GO) test ./...

# The same tier-1 suite with every simulation forced onto 2 engine shards
# (golden corpus included): the cheap continuous proof that sharding is
# behaviour-invariant, not just proven by the dedicated invariance tests.
test-sharded:
	ALERT_SHARDS=2 $(GO) test ./...

# Race detection over the concurrency-bearing packages (the dynamic
# backstop for the sharedstate analyzer): the harness worker pools, the
# sharded event engine, the distributed campaign server (lease queue,
# HTTP handlers, worker executor pools), the packages the fork-join
# workers fan out over (medium position sweeps, node construction,
# mobility walkers), and the live UDP daemons (pump goroutines, control
# plane, coordinator).
race:
	$(GO) test -race ./internal/experiment ./internal/campaign \
		./internal/campaign/server ./internal/sim \
		./internal/medium ./internal/node ./internal/mobility
	$(GO) test -race -short ./internal/live

# Coverage floor over the packages the telemetry layer threads through.
# Each must stay at or above COVER_FLOOR percent statement coverage.
COVER_PKGS = ./internal/telemetry ./internal/sim ./internal/medium \
	./internal/gpsr ./internal/core ./internal/metrics ./internal/node \
	./internal/experiment ./internal/ao2p ./internal/alarm ./internal/zap \
	./internal/campaign ./internal/campaign/server ./internal/live
COVER_FLOOR = 75.0

cover:
	@$(GO) test -cover $(COVER_PKGS) | awk -v floor=$(COVER_FLOOR) ' \
		{ print } \
		/coverage:/ { pct = $$5; sub(/%/, "", pct); \
			if (pct + 0 < floor) bad = bad ORS "  " $$2 " at " $$5 " (floor " floor "%)" } \
		END { if (bad != "") { print "FAIL: coverage below floor:" bad; exit 1 } }'

# Full benchmark pass: one benchmark per paper table/figure + ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Single-iteration smoke over the root figure benchmarks, leaving a
# machine-readable artifact (cmd/benchjson parses the text output) and
# gating allocs/op against the committed baseline: allocation counts are
# deterministic at -benchtime=1x for serial benchmarks, but the
# multi-goroutine ones (parallel figure sweeps, campaign engine) jitter
# by a few allocs/op of scheduler noise between identical-code runs —
# -allocslack 16 absorbs that. Across binaries (committed baseline vs new
# code) GC pacing shifts too, and each extra GC cycle re-fills the worker
# pools, so drift scales with the benchmark's size (~0.03% of allocs/op);
# -allocslackpct 0.25 absorbs that proportionally. Both bounds still flag
# any real per-event or per-frame leak (those cost percents — thousands
# of allocs/op — here). ns/op at one iteration is jitter; the 400%
# tolerance only catches order-of-magnitude blowups.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run NONE . | $(GO) run ./cmd/benchjson > BENCH_pr10.json
	@echo "wrote BENCH_pr10.json"
	$(GO) run ./cmd/benchjson -compare -tolerance 400 -allocslack 16 -allocslackpct 0.25 BENCH_pr9.json BENCH_pr10.json

# Regenerate every evaluation figure at paper fidelity (30 seeds) as one
# parallel, resumable campaign: results stream to out/figures-campaign, so a
# killed run continues where it stopped and re-runs are free. Figures land
# in out/figures/.
figures:
	$(GO) run ./cmd/campaign run -dir out/figures-campaign -cache-dir out/cache \
		-seeds 30 -quiet -o out/figures all

# Tiny campaign for CI: a 2-seed grid through the full engine (store,
# cache, resume machinery); the result store is uploaded as an artifact.
campaign-smoke:
	$(GO) run ./cmd/campaign run -dir out/campaign-smoke -cache-dir out/campaign-smoke-cache \
		-seeds 2 -quiet -o out/campaign-smoke-figures fig11 fig12 energy
	$(GO) run ./cmd/campaign status -dir out/campaign-smoke

# Distributed campaign smoke: the same 2-seed grid, once single-process and
# once through one `serve` process plus two `work` processes over HTTP, then
# a byte-for-byte comparison of the two result stores — the CI gate on the
# distributed engine's byte-identity contract (DESIGN.md, "Distributed
# campaign").
campaign-distributed-smoke:
	rm -rf out/dist-smoke
	mkdir -p out/dist-smoke
	$(GO) build -o out/dist-smoke/campaign ./cmd/campaign
	out/dist-smoke/campaign run -dir out/dist-smoke/ref -seeds 2 -quiet \
		-o out/dist-smoke/ref-figures fig11 fig12 energy
	out/dist-smoke/campaign serve -dir out/dist-smoke/dist -seeds 2 -quiet \
		-addr 127.0.0.1:0 -addr-file out/dist-smoke/addr \
		-o out/dist-smoke/dist-figures fig11 fig12 energy & SERVE=$$!; \
	i=0; while [ ! -f out/dist-smoke/addr ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	if [ ! -f out/dist-smoke/addr ]; then echo "serve never bound" >&2; kill $$SERVE; exit 1; fi; \
	ADDR=$$(cat out/dist-smoke/addr); \
	out/dist-smoke/campaign work -server http://$$ADDR -name smoke-1 -quiet & W1=$$!; \
	out/dist-smoke/campaign work -server http://$$ADDR -name smoke-2 -quiet & W2=$$!; \
	RC=0; wait $$SERVE || RC=1; wait $$W1 || RC=1; wait $$W2 || RC=1; exit $$RC
	cmp out/dist-smoke/ref/results.jsonl out/dist-smoke/dist/results.jsonl
	@echo "distributed campaign is byte-identical to the single-process run"

# Live-mode smoke across real process boundaries: five alertd daemons on
# loopback (the frozen 5-node GPSR topology of TestFiveNodeExactPath), then
# alertload in external mode dials their control planes, replays the sim's
# flow schedule, and band-checks live against sim — sent counts must match
# exactly. -quit tears the fleet down through /v1/quit.
live-smoke:
	rm -rf out/live-smoke
	mkdir -p out/live-smoke
	$(GO) build -o out/live-smoke/alertd ./cmd/alertd
	$(GO) build -o out/live-smoke/alertload ./cmd/alertload
	for i in 0 1 2 3 4; do \
		out/live-smoke/alertd -id $$i -n 5 -protocol gpsr -seed 15 -field 600x600 \
			-timescale 0.05 -addr-file out/live-smoke/node$$i.addr & \
	done; \
	i=0; while [ $$(ls out/live-smoke/*.addr 2>/dev/null | wc -l) -lt 5 ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	if [ $$(ls out/live-smoke/*.addr 2>/dev/null | wc -l) -lt 5 ]; then echo "alertd fleet never bound" >&2; kill $$(jobs -p) 2>/dev/null; exit 1; fi; \
	cat out/live-smoke/node*.addr > out/live-smoke/fleet.txt; \
	RC=0; out/live-smoke/alertload -mode both -nodes out/live-smoke/fleet.txt \
		-protocol gpsr -seed 15 -n 5 -field 600x600 -mobility static \
		-duration 10 -drain 2 -pairs 2 -interval 2 -timescale 0.05 \
		-out out/live-smoke/logs -quit || RC=1; \
	wait; exit $$RC
	@echo "live fleet matches sim inside the bands"

# The Section 4 closed-form curves.
analysis:
	$(GO) run ./cmd/analysis all

# The artifacts the reproduction hand-off asks for.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

fuzz:
	$(GO) test ./internal/core -fuzz FuzzUnmarshal -fuzztime 30s
	$(GO) test ./internal/mobility -fuzz FuzzParseNS2 -fuzztime 30s
	$(GO) test ./internal/sim -fuzz FuzzSchedule -fuzztime 30s
	$(GO) test ./internal/live -fuzz FuzzWireCodec -fuzztime 30s

# BENCH_pr3/pr4/pr6/pr8/pr9/pr10.json are committed comparison baselines,
# not build outputs — clean only removes the transient artifacts.
# (bench-smoke regenerates BENCH_pr10.json in place; the committed copy is
# the blessed baseline for the next generation.)
clean:
	rm -f test_output.txt bench_output.txt BENCH_pr5.json
	rm -rf out
